//! Non-preemptive Tetris adaptation (Section 7.2).
//!
//! Tetris (Grandl et al., SIGCOMM '14) packs jobs by an *alignment score* —
//! the dot product of the job's demand vector with the machine's remaining
//! capacity — blended with a term that favors short work. The paper adapts it
//! to the non-preemptive setting: "jobs are sorted by SVF, selected by the
//! alignment scores", i.e. the duration term becomes a smallest-volume-first
//! preference and placements are final.
//!
//! The paper fixes the direction of the volume term but not its scale, so we
//! normalize both terms into `[0, 1]`:
//!
//! `score(i, j) = <avail_i, d_j> / R  +  eps * v_min / v_j`
//!
//! where `v_min` is the smallest pending volume and `eps` (default 1)
//! balances packing against volume. This interpretation is recorded in
//! DESIGN.md.

use mris_sim::{run_online, Dispatcher, OnlinePolicy};
use mris_types::{fraction, Amount, Instance, Job, JobId, Schedule, SchedulingError, Time};

use crate::Scheduler;

/// The Tetris online policy. Use through [`Tetris`] unless composing your
/// own driver loop.
#[derive(Debug, Clone)]
pub struct TetrisPolicy {
    eps: f64,
    pending: Vec<JobId>,
    fresh: Vec<JobId>,
}

impl TetrisPolicy {
    /// A Tetris policy with volume-term weight `eps`.
    pub fn new(eps: f64) -> Self {
        assert!(eps >= 0.0 && eps.is_finite());
        TetrisPolicy {
            eps,
            pending: Vec::new(),
            fresh: Vec::new(),
        }
    }

    /// Normalized alignment of `job` with the remaining capacity `avail`:
    /// `sum_l avail_l * d_l / R` in capacity-fraction units, so 1.0 means a
    /// full-demand job on an idle machine.
    fn alignment(avail: &[Amount], job: &Job) -> f64 {
        avail
            .iter()
            .zip(job.demands.iter())
            .map(|(&a, &d)| fraction(a) * fraction(d))
            .sum::<f64>()
            / avail.len() as f64
    }

    fn score(&self, avail: &[Amount], job: &Job, v_min: f64) -> f64 {
        let volume_term = if job.volume() > 0.0 {
            (v_min / job.volume()).min(1.0)
        } else {
            1.0
        };
        Self::alignment(avail, job) + self.eps * volume_term
    }

    /// Smallest positive pending volume, used to normalize the SVF term
    /// (`INFINITY` when no pending job has positive volume, in which case the
    /// volume term saturates at 1 for every job).
    fn min_volume(&self, instance: &Instance) -> f64 {
        self.pending
            .iter()
            .map(|&j| instance.job(j).volume())
            .filter(|&v| v > 0.0)
            .fold(f64::INFINITY, f64::min)
    }

    /// Greedily fills machine `m` from `candidates` (indices into
    /// `self.pending`), highest score first, until nothing fits.
    fn fill_machine(
        &mut self,
        d: &mut Dispatcher<'_>,
        m: usize,
        fresh_only: bool,
    ) -> Result<(), SchedulingError> {
        let instance = d.instance();
        loop {
            let v_min = self.min_volume(instance);
            let avail = d.cluster().avail(m).to_vec();
            let mut best: Option<(f64, usize)> = None;
            for (idx, &j) in self.pending.iter().enumerate() {
                if fresh_only && !self.fresh.contains(&j) {
                    continue;
                }
                let job = instance.job(j);
                if !d.cluster().fits(m, &job.demands) {
                    continue;
                }
                let s = self.score(&avail, job, v_min);
                if best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, idx));
                }
            }
            let Some((_, idx)) = best else { break };
            let j = self.pending.swap_remove(idx);
            self.fresh.retain(|&f| f != j);
            d.place(m, j)?;
        }
        Ok(())
    }
}

impl OnlinePolicy for TetrisPolicy {
    fn on_arrivals(&mut self, _now: Time, arrived: &[JobId], _instance: &Instance) {
        self.fresh.extend_from_slice(arrived);
        self.pending.extend_from_slice(arrived);
    }

    fn dispatch(&mut self, d: &mut Dispatcher<'_>, freed: &[usize]) -> Result<(), SchedulingError> {
        // Machines that freed capacity reconsider the whole queue.
        for &m in freed {
            self.fill_machine(d, m, false)?;
        }
        // Remaining machines gained no capacity since the previous event, so
        // only freshly arrived jobs can newly fit there.
        if !self.fresh.is_empty() {
            for m in 0..d.cluster().num_machines() {
                if freed.binary_search(&m).is_err() {
                    self.fill_machine(d, m, true)?;
                }
                if self.fresh.is_empty() {
                    break;
                }
            }
        }
        self.fresh.clear();
        Ok(())
    }
}

/// The Tetris scheduler adapted to the non-preemptive multi-machine setting
/// (Section 7.2). Behaves like a PQ-class algorithm with a dynamic,
/// machine-aware queue order, and is therefore also subject to Lemma 4.1.
#[derive(Debug, Clone, Copy)]
pub struct Tetris {
    /// Weight of the smallest-volume-first term relative to the alignment
    /// term (both normalized to `[0, 1]`).
    pub eps: f64,
}

impl Tetris {
    /// Tetris with volume-term weight `eps`.
    pub fn new(eps: f64) -> Self {
        Tetris { eps }
    }
}

impl Default for Tetris {
    /// Equal weighting of packing alignment and volume preference.
    fn default() -> Self {
        Tetris { eps: 1.0 }
    }
}

impl Scheduler for Tetris {
    fn name(&self) -> String {
        "TETRIS".to_string()
    }

    fn try_schedule_on(
        &self,
        instance: &Instance,
        cluster: &mris_types::ClusterSpec,
    ) -> Result<Schedule, SchedulingError> {
        run_online(instance, cluster, &mut TetrisPolicy::new(self.eps))
    }

    // Reactive like PQ: gated arrivals and speed-scaled runs both come for
    // free from the driver and cluster.
    fn supports_precedence(&self) -> bool {
        true
    }

    fn supports_heterogeneous(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(jobs: Vec<Job>) -> Instance {
        Instance::from_unnumbered(jobs, 2).unwrap()
    }

    fn j(r: f64, p: f64, d: &[f64]) -> Job {
        Job::from_fractions(JobId(0), r, p, 1.0, d)
    }

    #[test]
    fn prefers_aligned_job() {
        // Machine half full on resource 0. Job A demands the scarce resource,
        // job B the abundant one; same volume. Tetris should pick B first.
        let jobs = vec![
            j(0.0, 10.0, &[0.5, 0.0]), // background load on resource 0
            j(1.0, 2.0, &[0.5, 0.0]),  // A: contends
            j(1.0, 2.0, &[0.0, 0.5]),  // B: aligns with what's free
        ];
        let instance = inst(jobs);
        let s = Tetris::default().schedule(&instance, 1);
        s.validate(&instance).unwrap();
        // Both fit at t=1 actually (0.5 + 0.5 <= 1), so both start then; use
        // a tighter variant to force a choice:
        let jobs = vec![
            j(0.0, 10.0, &[0.6, 0.0]),
            j(1.0, 2.0, &[0.5, 0.0]), // does not fit next to the background
            j(1.0, 2.0, &[0.0, 0.5]),
        ];
        let instance = inst(jobs);
        let s = Tetris::default().schedule(&instance, 1);
        s.validate(&instance).unwrap();
        assert_eq!(s.get(JobId(2)).unwrap().start, 1.0);
        assert_eq!(s.get(JobId(1)).unwrap().start, 10.0);
    }

    #[test]
    fn volume_term_breaks_alignment_ties() {
        // Two jobs with identical demands but different durations; only one
        // fits at a time. The smaller volume wins.
        let jobs = vec![j(0.0, 8.0, &[0.6, 0.6]), j(0.0, 2.0, &[0.6, 0.6])];
        let instance = inst(jobs);
        let s = Tetris::default().schedule(&instance, 1);
        s.validate(&instance).unwrap();
        assert_eq!(s.get(JobId(1)).unwrap().start, 0.0);
        assert_eq!(s.get(JobId(0)).unwrap().start, 2.0);
    }

    #[test]
    fn commits_prematurely_like_pq() {
        // Tetris is also vulnerable to the Lemma 4.1 trap.
        let mut jobs = vec![j(0.0, 10.0, &[1.0, 1.0])];
        for _ in 0..3 {
            jobs.push(j(0.5, 1.0, &[0.2, 0.2]));
        }
        let instance = inst(jobs);
        let s = Tetris::default().schedule(&instance, 1);
        s.validate(&instance).unwrap();
        assert_eq!(s.get(JobId(0)).unwrap().start, 0.0);
        for i in 1..4 {
            assert_eq!(s.get(JobId(i)).unwrap().start, 10.0);
        }
    }

    #[test]
    fn schedules_everything_on_multiple_machines() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| j((i % 5) as f64, 1.0 + (i % 4) as f64, &[0.3, 0.4]))
            .collect();
        let instance = inst(jobs);
        let s = Tetris::default().schedule(&instance, 3);
        s.validate(&instance).unwrap();
    }
}
