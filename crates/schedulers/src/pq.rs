//! The Priority-Queue (PQ) class of online algorithms (Section 4).
//!
//! On every event (arrival or completion), PQ scans the queue of pending
//! jobs in heuristic order and starts every job that currently fits on some
//! machine (first fit). The implementation exploits that between events
//! nothing changes: at a completion event only the machines that freed
//! capacity can newly admit an *old* pending job, and at an arrival event
//! only the *newly arrived* jobs can be admissible at all. This keeps each
//! event to one ordered scan with O(R) feasibility checks per job while
//! producing exactly the schedule of the textbook full rescan (verified by a
//! cross-check against [`NaivePqPolicy`] in the tests).

use std::collections::BTreeSet;

use mris_sim::{run_online, Dispatcher, OnlinePolicy, OrdTime};
use mris_types::{Instance, JobId, Schedule, SchedulingError, Time};

use crate::{Scheduler, SortHeuristic};

/// The PQ online policy. Use through [`Pq`] unless you are composing your
/// own driver loop.
#[derive(Debug, Clone)]
pub struct PqPolicy {
    heuristic: SortHeuristic,
    pending: BTreeSet<(OrdTime, JobId)>,
    fresh: Vec<JobId>,
}

impl PqPolicy {
    /// A PQ policy ordering its queue with `heuristic`.
    pub fn new(heuristic: SortHeuristic) -> Self {
        PqPolicy {
            heuristic,
            pending: BTreeSet::new(),
            fresh: Vec::new(),
        }
    }

    /// Number of jobs currently queued (arrived but not started).
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }
}

impl OnlinePolicy for PqPolicy {
    fn on_arrivals(&mut self, _now: Time, arrived: &[JobId], _instance: &Instance) {
        self.fresh.extend_from_slice(arrived);
    }

    fn dispatch(&mut self, d: &mut Dispatcher<'_>, freed: &[usize]) -> Result<(), SchedulingError> {
        let instance = d.instance();
        for &j in &self.fresh {
            self.pending
                .insert((OrdTime(self.heuristic.key(instance.job(j))), j));
        }
        let mut fresh: Vec<JobId> = std::mem::take(&mut self.fresh);
        fresh.sort_unstable();
        if freed.is_empty() && fresh.is_empty() {
            return Ok(());
        }
        let mut placed: Vec<(OrdTime, JobId)> = Vec::new();
        for &(key, j) in self.pending.iter() {
            let demands = &instance.job(j).demands;
            // Old pending jobs were infeasible everywhere at the previous
            // event and capacity has only shrunk elsewhere, so they need only
            // be checked against machines that just freed capacity. `freed`
            // is sorted, so this remains first fit.
            let machine = if fresh.binary_search(&j).is_ok() {
                d.cluster().first_fit(demands)
            } else {
                freed
                    .iter()
                    .copied()
                    .find(|&m| d.cluster().fits(m, demands))
            };
            if let Some(m) = machine {
                d.place(m, j)?;
                placed.push((key, j));
            }
        }
        for entry in placed {
            self.pending.remove(&entry);
        }
        Ok(())
    }

    fn encode_durable_state(&self, out: &mut Vec<u8>) -> bool {
        // BTreeSet iterates sorted, and `fresh` is in deterministic arrival
        // order, so the encoding is already canonical.
        out.extend_from_slice(&(self.pending.len() as u64).to_le_bytes());
        for &(OrdTime(key), j) in &self.pending {
            out.extend_from_slice(&key.to_bits().to_le_bytes());
            out.extend_from_slice(&j.0.to_le_bytes());
        }
        out.extend_from_slice(&(self.fresh.len() as u64).to_le_bytes());
        for j in &self.fresh {
            out.extend_from_slice(&j.0.to_le_bytes());
        }
        true
    }
}

/// The PQ scheduler (Section 4): event-driven greedy scheduling in heuristic
/// queue order. Lemma 4.1 proves this class `Omega(N)`-competitive for AWCT.
#[derive(Debug, Clone, Copy)]
pub struct Pq {
    /// Queue ordering. The paper's evaluation uses WSJF and WSVF variants.
    pub heuristic: SortHeuristic,
}

impl Pq {
    /// A PQ scheduler with the given queue ordering.
    pub fn new(heuristic: SortHeuristic) -> Self {
        Pq { heuristic }
    }
}

impl Scheduler for Pq {
    fn name(&self) -> String {
        format!("PQ-{}", self.heuristic)
    }

    fn try_schedule_on(
        &self,
        instance: &Instance,
        cluster: &mris_types::ClusterSpec,
    ) -> Result<Schedule, SchedulingError> {
        run_online(instance, cluster, &mut PqPolicy::new(self.heuristic))
    }

    // Purely reactive: the driver gates DAG arrivals and the cluster scales
    // run lengths by machine speed, so PQ works on both workload families.
    fn supports_precedence(&self) -> bool {
        true
    }

    fn supports_heterogeneous(&self) -> bool {
        true
    }
}

/// Reference implementation that rescans *all* pending jobs against *all*
/// machines at every event — the literal Section 4 definition, used to
/// cross-validate [`PqPolicy`]'s incremental scan. Exposed for tests.
#[derive(Debug, Clone)]
pub struct NaivePqPolicy {
    heuristic: SortHeuristic,
    pending: BTreeSet<(OrdTime, JobId)>,
}

impl NaivePqPolicy {
    /// A naive full-rescan PQ policy.
    pub fn new(heuristic: SortHeuristic) -> Self {
        NaivePqPolicy {
            heuristic,
            pending: BTreeSet::new(),
        }
    }
}

impl OnlinePolicy for NaivePqPolicy {
    fn on_arrivals(&mut self, _now: Time, arrived: &[JobId], instance: &Instance) {
        for &j in arrived {
            self.pending
                .insert((OrdTime(self.heuristic.key(instance.job(j))), j));
        }
    }

    fn dispatch(
        &mut self,
        d: &mut Dispatcher<'_>,
        _freed: &[usize],
    ) -> Result<(), SchedulingError> {
        let instance = d.instance();
        let mut placed = Vec::new();
        for &(key, j) in self.pending.iter() {
            if let Some(m) = d.cluster().first_fit(&instance.job(j).demands) {
                d.place(m, j)?;
                placed.push((key, j));
            }
        }
        for entry in placed {
            self.pending.remove(&entry);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::Job;

    fn inst(jobs: Vec<Job>) -> Instance {
        Instance::from_unnumbered(jobs, 2).unwrap()
    }

    fn j(r: f64, p: f64, w: f64, d: &[f64]) -> Job {
        Job::from_fractions(JobId(0), r, p, w, d)
    }

    #[test]
    fn pq_commits_greedily_lemma_4_1_shape() {
        // The Lemma 4.1 adversarial shape: a huge job at t=0, tiny jobs at
        // t=0.1. PQ starts the huge job immediately; the tiny ones wait.
        let mut jobs = vec![j(0.0, 10.0, 1.0, &[1.0, 1.0])];
        for _ in 0..4 {
            jobs.push(j(0.1, 1.0, 1.0, &[0.25, 0.25]));
        }
        let instance = inst(jobs);
        let s = Pq::new(SortHeuristic::Wsjf).schedule(&instance, 1);
        s.validate(&instance).unwrap();
        assert_eq!(s.get(JobId(0)).unwrap().start, 0.0);
        for i in 1..5 {
            assert_eq!(s.get(JobId(i)).unwrap().start, 10.0, "job {i}");
        }
    }

    #[test]
    fn pq_sjf_orders_queue() {
        // Two jobs released together, both blocked by a running job; the
        // shorter goes first when capacity frees even though it arrived last.
        let jobs = vec![
            j(0.0, 5.0, 1.0, &[1.0, 0.0]),
            j(1.0, 4.0, 1.0, &[0.8, 0.0]),
            j(1.0, 1.0, 1.0, &[0.8, 0.0]),
        ];
        let instance = inst(jobs);
        let s = Pq::new(SortHeuristic::Sjf).schedule(&instance, 1);
        s.validate(&instance).unwrap();
        assert_eq!(s.get(JobId(2)).unwrap().start, 5.0);
        assert_eq!(s.get(JobId(1)).unwrap().start, 6.0);
    }

    #[test]
    fn optimized_matches_naive_on_pseudorandom_instances() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..40 {
            let n = 5 + (next() % 40) as usize;
            let jobs: Vec<Job> = (0..n)
                .map(|_| {
                    j(
                        (next() % 20) as f64 * 0.5,
                        1.0 + (next() % 8) as f64,
                        1.0 + (next() % 3) as f64,
                        &[(next() % 100) as f64 / 100.0, (next() % 100) as f64 / 100.0],
                    )
                })
                .collect();
            let instance = inst(jobs);
            for heuristic in SortHeuristic::ALL_EXTENDED {
                let machines = 1 + (trial % 3);
                let fast = run_online(&instance, machines, &mut PqPolicy::new(heuristic)).unwrap();
                let slow =
                    run_online(&instance, machines, &mut NaivePqPolicy::new(heuristic)).unwrap();
                assert_eq!(fast, slow, "trial {trial} heuristic {heuristic}");
                fast.validate(&instance).unwrap();
            }
        }
    }
}
