//! Cross-cutting tests of the baseline schedulers on structured and random
//! instances.

use mris_rng::prop::{check, Config};
use mris_rng::prop_assert;
use mris_schedulers::{BfExec, CaPq, Pq, Scheduler, SortHeuristic, Tetris};
use mris_types::{Instance, Job, JobId};

fn all_baselines() -> Vec<Box<dyn Scheduler>> {
    let mut v: Vec<Box<dyn Scheduler>> = SortHeuristic::ALL_EXTENDED
        .iter()
        .map(|&h| Box::new(Pq::new(h)) as Box<dyn Scheduler>)
        .collect();
    v.push(Box::new(Tetris::default()));
    v.push(Box::new(Tetris::new(0.0))); // pure alignment
    v.push(Box::new(BfExec));
    v.push(Box::new(CaPq::default()));
    v
}

fn inst(jobs: Vec<Job>, r: usize) -> Instance {
    Instance::from_unnumbered(jobs, r).unwrap()
}

#[test]
fn zero_demand_jobs_start_at_release() {
    // A zero-demand job always fits; every work-conserving baseline should
    // start it the moment it arrives (CA-PQ deliberately doesn't).
    let jobs = vec![
        Job::from_fractions(JobId(0), 0.0, 5.0, 1.0, &[1.0]),
        Job::from_fractions(JobId(0), 1.0, 2.0, 1.0, &[0.0]),
    ];
    let instance = inst(jobs, 1);
    for algo in all_baselines() {
        let s = algo.schedule(&instance, 1);
        s.validate(&instance).unwrap();
        if !algo.name().starts_with("CA-PQ") {
            assert_eq!(
                s.get(JobId(1)).unwrap().start,
                1.0,
                "{} should start the free job at release",
                algo.name()
            );
        }
    }
}

#[test]
fn uncontended_jobs_start_at_release_for_all_event_driven_schedulers() {
    // Plenty of capacity: every event-driven baseline is work-conserving.
    let jobs: Vec<Job> = (0..10)
        .map(|i| Job::from_fractions(JobId(0), i as f64, 2.0, 1.0, &[0.05, 0.05]))
        .collect();
    let instance = inst(jobs, 2);
    for algo in all_baselines() {
        if algo.name().starts_with("CA-PQ") {
            continue;
        }
        let s = algo.schedule(&instance, 2);
        s.validate(&instance).unwrap();
        for job in instance.jobs() {
            assert_eq!(
                s.get(job.id).unwrap().start,
                job.release,
                "{}: job {} delayed without contention",
                algo.name(),
                job.id
            );
        }
    }
}

#[test]
fn identical_jobs_scheduled_in_id_order_by_pq() {
    // Deterministic tie-breaking: equal keys resolve by job id.
    let jobs: Vec<Job> = (0..6)
        .map(|_| Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.9]))
        .collect();
    let instance = inst(jobs, 1);
    let s = Pq::new(SortHeuristic::Wsjf).schedule(&instance, 1);
    s.validate(&instance).unwrap();
    let mut starts: Vec<(u32, f64)> = s.assignments().map(|a| (a.job.0, a.start)).collect();
    starts.sort_by_key(|&(id, _)| id);
    for w in starts.windows(2) {
        assert!(w[0].1 <= w[1].1, "id order broken: {starts:?}");
    }
}

#[test]
fn far_future_release_is_respected() {
    let jobs = vec![Job::from_fractions(JobId(0), 1e6, 1.0, 1.0, &[0.5])];
    let instance = inst(jobs, 1);
    for algo in all_baselines() {
        let s = algo.schedule(&instance, 2);
        assert_eq!(s.get(JobId(0)).unwrap().start, 1e6, "{}", algo.name());
    }
}

/// Every baseline produces feasible, complete schedules on random
/// instances with extreme demand mixes (including full-demand jobs and
/// zero-demand jobs).
#[test]
fn baselines_feasible_on_extreme_mixes() {
    const LEVELS: [f64; 6] = [0.0, 0.01, 0.33, 0.5, 0.99, 1.0];
    check(
        "baselines feasible on extreme mixes",
        &Config::with_cases(48),
        |rng| {
            let n = rng.gen_range(1..20usize);
            let rows: Vec<(f64, f64, Vec<f64>)> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0.0..8.0),
                        rng.gen_range(0.5..4.0),
                        vec![*rng.choose(&LEVELS), *rng.choose(&LEVELS)],
                    )
                })
                .collect();
            (rows, rng.gen_range(1..4usize))
        },
        |(rows, machines)| {
            if rows.is_empty() || rows.iter().any(|(_, _, d)| d.len() != 2) {
                return Ok(());
            }
            let jobs: Vec<Job> = rows
                .iter()
                .map(|(r, p, d)| Job::from_fractions(JobId(0), *r, *p, 1.0, d))
                .collect();
            let instance = inst(jobs, 2);
            for algo in all_baselines() {
                let s = algo.schedule(&instance, *machines);
                prop_assert!(s.validate(&instance).is_ok(), "{}", algo.name());
            }
            Ok(())
        },
    );
}

/// Tetris with eps = 0 (pure alignment) and large eps (pure SVF) bracket
/// the default, and all remain feasible.
#[test]
fn tetris_eps_spectrum() {
    check(
        "tetris eps spectrum",
        &Config::with_cases(48),
        |rng| {
            let n = rng.gen_range(2..15usize);
            (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0.0..5.0),
                        rng.gen_range(1.0..3.0),
                        rng.gen_range(0.05..0.8),
                    )
                })
                .collect::<Vec<(f64, f64, f64)>>()
        },
        |rows| {
            if rows.is_empty() {
                return Ok(());
            }
            let jobs: Vec<Job> = rows
                .iter()
                .map(|(r, p, d)| Job::from_fractions(JobId(0), *r, *p, 1.0, &[*d, *d]))
                .collect();
            let instance = inst(jobs, 2);
            for eps in [0.0, 0.5, 1.0, 10.0] {
                let s = Tetris::new(eps).schedule(&instance, 2);
                prop_assert!(s.validate(&instance).is_ok(), "eps = {eps}");
            }
            Ok(())
        },
    );
}

/// CA-PQ never starts anything before the last release, and every other
/// baseline starts at least one job earlier whenever releases are
/// spread and capacity is free.
#[test]
fn capq_gates_on_last_release() {
    check(
        "capq gates on last release",
        &Config::with_cases(48),
        |rng| {
            let n = rng.gen_range(3..12usize);
            (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0.0..10.0),
                        rng.gen_range(0.5..2.0),
                        rng.gen_range(0.05..0.3),
                    )
                })
                .collect::<Vec<(f64, f64, f64)>>()
        },
        |rows| {
            if rows.is_empty() {
                return Ok(());
            }
            let jobs: Vec<Job> = rows
                .iter()
                .map(|(r, p, d)| Job::from_fractions(JobId(0), *r, *p, 1.0, &[*d]))
                .collect();
            let instance = inst(jobs, 1);
            let gate = instance.stats().max_release;
            let s = CaPq::default().schedule(&instance, 1);
            for a in s.assignments() {
                prop_assert!(a.start >= gate - 1e-9);
            }
            Ok(())
        },
    );
}
