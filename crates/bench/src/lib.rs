//! Experiment harness regenerating every figure of the paper.
//!
//! Each figure has a binary in `src/bin/` (`fig1` ... `fig7`, `lemma41`)
//! that runs the corresponding experiment and prints the series as a
//! markdown table (and CSV with `--csv`), plus a criterion bench in
//! `benches/` that tracks the runtime of the same code path on a reduced
//! workload.
//!
//! ## Scaling
//!
//! The paper runs up to `N = 64000` jobs on `M = 20` machines with 10
//! sampled job sets per point. This reproduction defaults to `N = 16000` on
//! `M = 5` — the same jobs-per-machine load (3200), so the comparative
//! shapes are preserved — sized for a single-core machine. Every binary
//! accepts `--paper` to run at the paper's full scale, and `--samples`,
//! `--machines`, `--factor` to tune individual knobs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod harness;
pub mod scan;

pub use cli::Args;
pub use harness::{
    awct_summaries, comparison_algorithms, default_trace, mris_greedy, mris_with_heuristic,
    AwctRow, Scale, TracePool,
};
