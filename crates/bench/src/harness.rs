//! Shared experiment plumbing for the figure binaries and benches.

use mris_core::{KnapsackChoice, Mris, MrisConfig};
use mris_metrics::Summary;
use mris_schedulers::{Scheduler, SortHeuristic};
use mris_trace::{AzureTrace, AzureTraceConfig};
use mris_types::Instance;

use crate::Args;

/// A generated base trace plus the Section 7.1 downsampling protocol: for a
/// target of `n` jobs, the factor is `base_len / n` and `samples` offsets
/// are drawn without replacement.
pub struct TracePool {
    trace: AzureTrace,
    sample_seed: u64,
}

impl TracePool {
    /// Generates a base trace of `base_jobs` requests.
    pub fn new(base_jobs: usize, seed: u64) -> Self {
        let trace = AzureTrace::generate(&AzureTraceConfig {
            num_jobs: base_jobs,
            seed,
            ..Default::default()
        });
        TracePool {
            trace,
            sample_seed: seed ^ 0x5EED,
        }
    }

    /// The underlying base trace.
    pub fn trace(&self) -> &AzureTrace {
        &self.trace
    }

    /// `samples` downsampled instances of ~`n` jobs each (fewer samples if
    /// the downsampling factor is smaller than `samples`).
    pub fn instances_for(&self, n: usize, samples: usize) -> Vec<Instance> {
        let factor = (self.trace.len() / n).max(1);
        self.trace
            .sample_instances(factor, samples.min(factor), self.sample_seed)
    }
}

/// The standard experiment scale, derived from command-line flags.
///
/// Defaults target a single-core machine: `N` up to 16000 on `M = 5`
/// machines — the paper's jobs-per-machine load (64000 / 20 = 3200) at a
/// quarter of the size. `--paper` restores the paper's full scale.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Job-count sweep for Figures 1-3.
    pub n_sweep: Vec<usize>,
    /// Fixed job count for Figures 4-6.
    pub n_fixed: usize,
    /// Machine count (Figures 1-3, 5, 6).
    pub machines: usize,
    /// Sampled job sets per data point.
    pub samples: usize,
    /// Base-trace size (downsampling source).
    pub base_jobs: usize,
    /// Base-trace seed.
    pub seed: u64,
    /// Emit CSV instead of markdown.
    pub csv: bool,
}

impl Scale {
    /// Reads the scale from flags: `--paper`, `--samples`, `--machines`,
    /// `--n`, `--sweep a,b,c`, `--seed`, `--csv`.
    pub fn from_args(args: &Args) -> Self {
        let paper = args.has("paper");
        let (default_sweep, default_n, default_m): (&[usize], usize, usize) = if paper {
            (&[4_000, 8_000, 16_000, 32_000, 64_000], 64_000, 20)
        } else {
            (&[500, 1_000, 2_000, 4_000, 8_000, 16_000], 16_000, 5)
        };
        let n_sweep = args.get_list("sweep", default_sweep);
        let n_fixed = args.get("n", default_n);
        let samples = args.get("samples", 10usize);
        let max_n = n_sweep.iter().copied().max().unwrap_or(0).max(n_fixed);
        Scale {
            n_sweep,
            n_fixed,
            machines: args.get("machines", default_m),
            samples,
            // Enough base jobs that even the largest N has >= samples offsets.
            base_jobs: max_n * samples.max(16),
            seed: args.get("seed", 0xA2u64),
            csv: args.has("csv"),
        }
    }

    /// Prints a table in the format selected by `--csv`.
    pub fn print_table(&self, table: &mris_metrics::Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.to_markdown());
        }
    }
}

/// One algorithm's summaries across a sweep (one [`Summary`] per point).
#[derive(Debug, Clone)]
pub struct AwctRow {
    /// Algorithm name.
    pub name: String,
    /// Mean ± CI of AWCT at each sweep point, in sweep order.
    pub points: Vec<Summary>,
}

/// Runs every algorithm over every instance and summarizes AWCT
/// (validating each schedule in debug builds).
pub fn awct_summaries(
    algorithms: &[Box<dyn Scheduler>],
    instances: &[Instance],
    machines: usize,
) -> Vec<(String, Summary)> {
    algorithms
        .iter()
        .map(|algo| {
            let awcts: Vec<f64> = instances
                .iter()
                .map(|instance| {
                    let schedule = algo.schedule(instance, machines);
                    debug_assert!(schedule.validate(instance).is_ok());
                    schedule.awct(instance)
                })
                .collect();
            (algo.name(), Summary::of(&awcts))
        })
        .collect()
}

/// The Figure 3/4 comparison set: MRIS, PQ-WSJF, PQ-WSVF, Tetris, BF-EXEC,
/// CA-PQ. Delegates to [`mris_core::registry`], the single source of truth
/// for name → scheduler resolution.
pub fn comparison_algorithms() -> Vec<Box<dyn Scheduler>> {
    mris_core::registry::comparison_algorithms()
}

/// MRIS with a given PQ sorting heuristic (Figure 1).
pub fn mris_with_heuristic(heuristic: SortHeuristic) -> Mris {
    Mris::with_config(MrisConfig {
        heuristic,
        ..Default::default()
    })
}

/// MRIS-GREEDY: the Remark 1 greedy knapsack variant (Figure 2).
pub fn mris_greedy() -> Mris {
    Mris::with_config(MrisConfig {
        knapsack: KnapsackChoice::Greedy,
        ..Default::default()
    })
}

/// Builds the standard trace pool for a scale.
pub fn default_trace(scale: &Scale) -> TracePool {
    TracePool::new(scale.base_jobs, scale.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_and_paper_flag() {
        let scale = Scale::from_args(&Args::from_args_iter(Vec::<String>::new()));
        assert_eq!(scale.machines, 5);
        assert_eq!(scale.n_fixed, 16_000);
        let paper = Scale::from_args(&Args::from_args_iter(["--paper".to_string()]));
        assert_eq!(paper.machines, 20);
        assert_eq!(paper.n_fixed, 64_000);
        assert!(paper.base_jobs >= 64_000 * 10);
    }

    #[test]
    fn trace_pool_downsamples_to_target() {
        let pool = TracePool::new(4_000, 1);
        let instances = pool.instances_for(500, 4);
        assert_eq!(instances.len(), 4);
        for inst in &instances {
            assert!((500..=501).contains(&inst.len()), "{}", inst.len());
        }
    }

    #[test]
    fn awct_summaries_run_all_algorithms() {
        let pool = TracePool::new(2_000, 2);
        let instances = pool.instances_for(200, 2);
        let algos = comparison_algorithms();
        let rows = awct_summaries(&algos, &instances, 3);
        assert_eq!(rows.len(), algos.len());
        for (name, summary) in rows {
            assert!(summary.mean > 0.0, "{name}");
        }
    }
}
