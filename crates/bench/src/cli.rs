//! Minimal command-line flag parsing for the figure binaries (keeps the
//! workspace free of an argument-parsing dependency).

use std::collections::HashMap;

/// Parsed `--key value` flags and bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses the process arguments. `--key value` pairs become values;
    /// `--key` followed by another flag (or nothing) becomes a switch.
    pub fn parse() -> Self {
        Self::from_args_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_args_iter<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                panic!("unexpected positional argument: {arg} (flags are --key value)");
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().unwrap();
                    out.values.insert(key.to_string(), value);
                }
                _ => out.switches.push(key.to_string()),
            }
        }
        out
    }

    /// The value of `--key`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.values
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|e| panic!("--{key}: {e:?}")))
            .unwrap_or(default)
    }

    /// Whether the bare switch `--key` was given.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Comma-separated list value of `--key`, or `default`.
    pub fn get_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.values.get(key) {
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim()
                        .parse()
                        .unwrap_or_else(|e| panic!("--{key}: {e:?}"))
                })
                .collect(),
            None => default.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_args_iter(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn parses_values_and_switches() {
        let a = args(&["--samples", "5", "--paper", "--machines", "20"]);
        assert_eq!(a.get("samples", 10usize), 5);
        assert_eq!(a.get("machines", 5usize), 20);
        assert_eq!(a.get("factor", 64usize), 64);
        assert!(a.has("paper"));
        assert!(!a.has("csv"));
    }

    #[test]
    fn parses_lists() {
        let a = args(&["--sweep", "100, 200,300"]);
        assert_eq!(a.get_list("sweep", &[1]), vec![100, 200, 300]);
        assert_eq!(a.get_list("other", &[7, 8]), vec![7, 8]);
    }
}
