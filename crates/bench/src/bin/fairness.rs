//! Fairness extension experiment (Section 7.5.2 reads Figure 5 as a
//! fairness story: PQ-class schedulers treat jobs unfairly, as Lemma 4.1
//! exemplifies).
//!
//! Reports Jain's fairness index over per-job slowdowns, plus max and mean
//! slowdown, for every scheduler on the Azure-like trace.
//!
//! `cargo run --release -p mris-bench --bin fairness [--n jobs] [--machines m]`

use mris_bench::{comparison_algorithms, default_trace, Args, Scale};
use mris_metrics::{fairness_report, Summary, Table};

fn main() {
    let args = Args::parse();
    let mut scale = Scale::from_args(&args);
    if !args.has("n") && !args.has("paper") {
        scale.n_fixed = 8_000;
    }
    eprintln!(
        "fairness: N = {}, M = {}, {} samples",
        scale.n_fixed,
        scale.machines,
        scale.samples.min(5)
    );
    let pool = default_trace(&scale);
    let instances = pool.instances_for(scale.n_fixed, scale.samples.min(5));
    let algorithms = comparison_algorithms();

    let mut table = Table::new(vec![
        "algorithm",
        "Jain(slowdown)",
        "max slowdown",
        "mean slowdown",
    ]);
    for algo in &algorithms {
        let mut jains = Vec::new();
        let mut maxes = Vec::new();
        let mut means = Vec::new();
        for instance in &instances {
            let schedule = algo.schedule(instance, scale.machines);
            let report = fairness_report(instance, &schedule);
            jains.push(report.jains_slowdown);
            maxes.push(report.max_slowdown);
            means.push(report.mean_slowdown);
        }
        table.push_row(vec![
            algo.name(),
            format!("{:.3}", Summary::of(&jains).mean),
            format!("{:.0}", Summary::of(&maxes).mean),
            format!("{:.0}", Summary::of(&means).mean),
        ]);
        eprintln!("  {}: done", algo.name());
    }

    println!(
        "\nFairness of per-job slowdowns (N = {}, M = {}; Jain's index: 1.0 =\n\
         perfectly even, 1/N = one job absorbs all the slowdown):\n",
        scale.n_fixed, scale.machines
    );
    scale.print_table(&table);
}
