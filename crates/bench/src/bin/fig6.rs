//! Figure 6: effect of the number of resource types on AWCT.
//!
//! Augments the 4-resource Azure-like dataset with synthetic resources (each
//! new demand is the CPU demand of a uniformly resampled job, Section 7.5.3)
//! and sweeps R from 4 to 20. Expected shape (paper): every scheduler
//! degrades as R grows, but MRIS degrades far less (paper: +17% for MRIS vs
//! +80% for Tetris from R=4 to R=20).
//!
//! `cargo run --release -p mris-bench --bin fig6 [--paper] [--n jobs]
//!  [--machines m] [--r-sweep 4,8,12,16,20] [--csv]`

use mris_bench::{awct_summaries, comparison_algorithms, default_trace, Args, Scale};
use mris_metrics::Table;
use mris_trace::augment_resources;

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let r_sweep = args.get_list("r-sweep", &[4, 8, 12, 16, 20]);
    eprintln!(
        "fig6: R sweep {:?} at N = {}, M = {}, {} samples",
        r_sweep, scale.n_fixed, scale.machines, scale.samples
    );
    let pool = default_trace(&scale);
    let base_instances = pool.instances_for(scale.n_fixed, scale.samples);
    let algorithms = comparison_algorithms();

    let mut headers = vec!["R".to_string()];
    headers.extend(algorithms.iter().map(|a| a.name()));
    let mut table = Table::new(headers);
    let mut first_row: Vec<f64> = Vec::new();
    let mut last_row: Vec<f64> = Vec::new();

    for &r in &r_sweep {
        let t0 = std::time::Instant::now();
        let instances: Vec<_> = base_instances
            .iter()
            .enumerate()
            .map(|(i, inst)| augment_resources(inst, r, scale.seed ^ (i as u64) << 8))
            .collect();
        let rows = awct_summaries(&algorithms, &instances, scale.machines);
        let means: Vec<f64> = rows.iter().map(|(_, s)| s.mean).collect();
        if first_row.is_empty() {
            first_row = means.clone();
        }
        last_row = means;
        let mut cells = vec![r.to_string()];
        cells.extend(
            rows.iter()
                .map(|(_, s)| format!("{:.1} ± {:.1}", s.mean, s.ci95_half_width())),
        );
        table.push_row(cells);
        eprintln!("  R = {r}: done in {:.1?}", t0.elapsed());
    }

    println!(
        "\nFigure 6 — AWCT vs number of resource types (N = {}, M = {}):\n",
        scale.n_fixed, scale.machines
    );
    scale.print_table(&table);

    if !first_row.is_empty() && r_sweep.len() >= 2 {
        println!(
            "\nDegradation from R = {} to R = {}:",
            r_sweep[0],
            r_sweep[r_sweep.len() - 1]
        );
        for (algo, (lo, hi)) in algorithms.iter().zip(first_row.iter().zip(&last_row)) {
            println!("  {:>12}: {:+.0}%", algo.name(), (hi / lo - 1.0) * 100.0);
        }
    }
}
