//! Makespan experiment (Remark 4 / Lemma 6.9): MRIS simultaneously
//! optimizes makespan, staying within `8R(1+eps)` of the optimum.
//!
//! Sweeps N and reports each scheduler's makespan alongside the Lemma 6.2
//! lower bound `max(V/(R*M), max_j r_j + p_j)`; the `MRIS/LB` column is a
//! conservative upper bound on MRIS's true makespan ratio.
//!
//! `cargo run --release -p mris-bench --bin makespan [--paper] [--samples k] ...`

use mris_bench::{comparison_algorithms, default_trace, Args, Scale};
use mris_metrics::{makespan_lower_bound, Summary, Table};

fn main() {
    let scale = Scale::from_args(&Args::parse());
    eprintln!(
        "makespan: N sweep {:?}, M = {}, {} samples",
        scale.n_sweep, scale.machines, scale.samples
    );
    let pool = default_trace(&scale);
    let algorithms = comparison_algorithms();

    let mut headers = vec!["N".to_string(), "LB".to_string()];
    headers.extend(algorithms.iter().map(|a| a.name()));
    headers.push("MRIS/LB".to_string());
    let mut table = Table::new(headers);

    for &n in &scale.n_sweep {
        let instances = pool.instances_for(n, scale.samples);
        let lb = Summary::of(
            &instances
                .iter()
                .map(|i| makespan_lower_bound(i, scale.machines))
                .collect::<Vec<_>>(),
        );
        let mut cells = vec![n.to_string(), format!("{:.0}", lb.mean)];
        let mut mris_mean = 0.0;
        for (idx, algo) in algorithms.iter().enumerate() {
            let makespans: Vec<f64> = instances
                .iter()
                .map(|inst| algo.schedule(inst, scale.machines).makespan(inst))
                .collect();
            let s = Summary::of(&makespans);
            if idx == 0 {
                mris_mean = s.mean;
            }
            cells.push(format!("{:.0} ± {:.0}", s.mean, s.ci95_half_width()));
        }
        cells.push(format!("{:.2}", mris_mean / lb.mean));
        table.push_row(cells);
        eprintln!("  N = {n}: done");
    }

    println!(
        "\nMakespan (Lemma 6.9) — makespan vs number of jobs (M = {}):\n",
        scale.machines
    );
    scale.print_table(&table);
    println!(
        "\nLB = max(V/(R*M), max_j r_j + p_j) (Lemma 6.2). MRIS's proven\n\
         makespan ceiling is 8R(1+eps) = {:.0}x.",
        mris_core::MrisConfig::default().competitive_ratio(4)
    );
}
