//! Empirical competitive-ratio estimates: each scheduler's AWCT divided by
//! a provable lower bound on the optimum (`mris_metrics::awct_lower_bound`).
//! Because `LB <= OPT`, each reported number *upper-bounds* the true ratio —
//! observe how far below the proven `8R(1+eps)` ceiling MRIS operates on
//! realistic traces.
//!
//! `cargo run --release -p mris-bench --bin ratios [--paper] [--samples k] ...`

use mris_bench::{comparison_algorithms, default_trace, Args, Scale};
use mris_core::MrisConfig;
use mris_metrics::{awct_lower_bound, Summary, Table};

fn main() {
    let scale = Scale::from_args(&Args::parse());
    eprintln!(
        "ratios: N sweep {:?}, M = {}, {} samples",
        scale.n_sweep, scale.machines, scale.samples
    );
    let pool = default_trace(&scale);
    let algorithms = comparison_algorithms();

    let mut headers = vec!["N".to_string()];
    headers.extend(algorithms.iter().map(|a| format!("{}/LB", a.name())));
    let mut table = Table::new(headers);

    for &n in &scale.n_sweep {
        let instances = pool.instances_for(n, scale.samples);
        let mut cells = vec![n.to_string()];
        for algo in &algorithms {
            let ratios: Vec<f64> = instances
                .iter()
                .map(|inst| {
                    let awct = algo.schedule(inst, scale.machines).awct(inst);
                    awct / awct_lower_bound(inst, scale.machines)
                })
                .collect();
            let s = Summary::of(&ratios);
            cells.push(format!("{:.2} ± {:.2}", s.mean, s.ci95_half_width()));
        }
        table.push_row(cells);
        eprintln!("  N = {n}: done");
    }

    println!(
        "\nEmpirical AWCT ratio vs provable lower bound (M = {}; values\n\
         upper-bound the true competitive ratio):\n",
        scale.machines
    );
    scale.print_table(&table);
    println!(
        "\nMRIS's proven worst-case ceiling at R = 4: 8R(1+eps) = {:.0}.",
        MrisConfig::default().competitive_ratio(4)
    );
}
