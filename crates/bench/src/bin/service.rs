//! Service-mode benchmark (`BENCH_service.json`).
//!
//! Drives the `mris-service` daemon loop — admission control, epoch
//! batching, telemetry — with the open-loop load generator, for MRIS and
//! every comparison baseline, under two arrival processes (Poisson at a
//! target utilization, and periodic bursts). Reports sustained throughput
//! (completed jobs per wall second) and the p50/p95/p99 per-event decision
//! latency of each policy, plus the admission ledger.
//!
//! The Poisson/permissive run is additionally pinned: every submitted job
//! completes (nothing is shed or stranded by the service machinery itself).
//!
//! The `net` section drives the same Poisson workload through the
//! `mris-net` loopback TCP front door with a single client: per-submit
//! round-trip latency percentiles, end-to-end throughput against the
//! in-process baseline (the schedules must match bit-for-bit), and a
//! contended 2-tenant pass recording how close the deficit-round-robin
//! gate lands to its configured 3:1 admitted-demand split.
//!
//! A final obs-enabled MRIS pass per arrival process produces the
//! `stage_breakdown` section: wall-seconds and span counts for each stage
//! of the epoch decision path (`grid`/`filter`/`solve`/`probe`/`commit`,
//! from the `mris_epoch_*_seconds` span histograms) plus the knapsack memo
//! hit/miss counters. The timed passes above run with observability
//! disabled, so the breakdown never pollutes the throughput numbers.
//!
//! `cargo run --release -p mris-bench --bin service [--machines 8]
//!  [--jobs 2000] [--seed 11] [--utilization 0.7] [--smoke]
//!  [--out BENCH_service.json]`
//!
//! `--smoke` shrinks the workload so CI can validate the pipeline and the
//! JSON schema in seconds; full runs are for tracked numbers.

use mris_bench::Args;
use mris_core::registry::online_policy_by_name;
use mris_metrics::Percentiles;
use mris_obs::MetricValue;
use mris_service::{
    generate_workload, poisson_rate_for_utilization, run_workload, truncate_at_event,
    ArrivalProcess, DurabilityConfig, LoadGenConfig, MemorySnapshots, NullSink, RestoreOptions,
    Service, ServiceConfig, SharedBuf, SimClock, Workload,
};

/// One policy under one arrival process.
struct ServiceRow {
    process: &'static str,
    throughput: f64,
    latency_us: Percentiles,
    submitted: usize,
    completed: usize,
    rejected: usize,
    epochs: usize,
    max_queue_depth: usize,
    awct: f64,
}

impl ServiceRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"process\": \"{}\", \"throughput_jobs_per_sec\": {:.3}, ",
                "\"decision_latency_us\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}}, ",
                "\"submitted\": {}, \"completed\": {}, \"rejected\": {}, ",
                "\"epochs\": {}, \"max_queue_depth\": {}, \"awct\": {:.6}}}"
            ),
            self.process,
            self.throughput,
            self.latency_us.p50,
            self.latency_us.p95,
            self.latency_us.p99,
            self.submitted,
            self.completed,
            self.rejected,
            self.epochs,
            self.max_queue_depth,
            self.awct,
        )
    }
}

struct PolicyReport {
    name: &'static str,
    rows: Vec<ServiceRow>,
}

impl PolicyReport {
    fn to_json(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(|r| r.to_json()).collect();
        format!(
            "{{\"name\": \"{}\", \"results\": [{}]}}",
            self.name,
            rows.join(", ")
        )
    }
}

fn run_one(name: &str, process: &'static str, workload: &Workload, machines: usize) -> ServiceRow {
    let policy = online_policy_by_name(name, &workload.instance, machines)
        .expect("comparison names resolve to online policies");
    let service = Service::new(
        workload.instance.clone(),
        policy,
        ServiceConfig::new(machines),
        SimClock::new(),
        NullSink,
    )
    .expect("valid service config");
    let (report, _) = run_workload(service, workload)
        .unwrap_or_else(|e| panic!("{name}/{process}: service run failed: {e}"));
    let s = report.summary;
    // The permissive service must not lose work: everything submitted
    // completes.
    assert_eq!(
        s.completed,
        workload.instance.len(),
        "{name}/{process}: service dropped jobs"
    );
    assert_eq!(s.rejected_queue_full + s.rejected_infeasible, 0);
    report
        .log
        .verify()
        .unwrap_or_else(|v| panic!("{name}/{process}: invariant violation: {v}"));
    ServiceRow {
        process,
        throughput: s.throughput_jobs_per_sec,
        latency_us: s.decision_latency_us.expect("events were processed"),
        submitted: s.submitted,
        completed: s.completed,
        rejected: 0,
        epochs: s.epochs,
        max_queue_depth: s.max_queue_depth,
        awct: s.awct,
    }
}

/// Stage totals from one obs-enabled MRIS pass over a workload.
struct StageBreakdown {
    process: &'static str,
    /// `(stage, span count, total seconds)` for the five decision stages.
    stages: Vec<(&'static str, u64, f64)>,
    memo_hits: u64,
    memo_misses: u64,
}

impl StageBreakdown {
    fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|(stage, count, seconds)| {
                format!("\"{stage}\": {{\"count\": {count}, \"seconds\": {seconds:.6}}}")
            })
            .collect();
        format!(
            concat!(
                "{{\"process\": \"{}\", \"stages\": {{{}}}, ",
                "\"memo_hits\": {}, \"memo_misses\": {}}}"
            ),
            self.process,
            stages.join(", "),
            self.memo_hits,
            self.memo_misses,
        )
    }
}

/// Re-runs MRIS over `workload` with an [`mris_obs::Obs`] subscriber
/// installed (the timed passes run with observability disabled, where the
/// `span!` sites are a single relaxed load) and reads the per-stage span
/// histograms and memo counters back out of the registry.
fn stage_breakdown(process: &'static str, workload: &Workload, machines: usize) -> StageBreakdown {
    let obs = std::sync::Arc::new(mris_obs::Obs::new());
    let guard = mris_obs::install_guard(obs.clone());
    let policy = online_policy_by_name("mris", &workload.instance, machines)
        .expect("mris resolves to an online policy");
    let service = Service::new(
        workload.instance.clone(),
        policy,
        ServiceConfig::new(machines),
        SimClock::new(),
        NullSink,
    )
    .expect("valid service config");
    run_workload(service, workload)
        .unwrap_or_else(|e| panic!("mris/{process}: breakdown run failed: {e}"));
    drop(guard);

    const STAGES: [(&str, &str); 5] = [
        ("grid", "mris_epoch_grid_seconds"),
        ("filter", "mris_epoch_filter_seconds"),
        ("solve", "mris_epoch_solve_seconds"),
        ("probe", "mris_epoch_probe_seconds"),
        ("commit", "mris_epoch_commit_seconds"),
    ];
    let snapshot = obs.registry().snapshot();
    let stages = STAGES
        .iter()
        .map(|&(stage, family)| {
            let (count, sum) = snapshot
                .iter()
                .find_map(|(name, _, value)| match value {
                    MetricValue::Histogram(h) if *name == family => Some((h.count, h.sum)),
                    _ => None,
                })
                .unwrap_or((0, 0.0));
            (stage, count, sum)
        })
        .collect();
    StageBreakdown {
        process,
        stages,
        memo_hits: obs
            .registry()
            .counter_value("mris_epoch_memo_hits_total", None)
            .unwrap_or(0),
        memo_misses: obs
            .registry()
            .counter_value("mris_epoch_memo_misses_total", None)
            .unwrap_or(0),
    }
}

/// Journal-on vs journal-off throughput plus restore latency at growing
/// journal-tail lengths, for MRIS under one workload. Both runs must
/// produce the identical schedule — journaling observes decisions, it
/// never makes them — and the overhead budget is 15%.
fn run_durability(
    process: &'static str,
    workload: &Workload,
    machines: usize,
    smoke: bool,
) -> String {
    let name = "mris";
    let make_policy = || {
        online_policy_by_name(name, &workload.instance, machines)
            .expect("mris resolves to an online policy")
    };
    let cfg = ServiceConfig::new(machines);
    // The throughput gate measures the WAL alone (snapshots off): the
    // journal rides the hot path on every event, while snapshotting is a
    // cadence choice measured separately below.
    let wal_dcfg = DurabilityConfig {
        flush_every: 1,
        snapshot_every: 0,
    };
    let dcfg = DurabilityConfig {
        flush_every: 1,
        snapshot_every: 32,
    };

    // The individual runs finish in milliseconds, so the off/on comparison
    // is interleaved and repeated, keeping the best of each side — the
    // standard microbench defense against scheduler noise.
    let reps = if smoke { 2 } else { 10 };
    let run_off = || {
        let service = Service::new(
            workload.instance.clone(),
            make_policy(),
            cfg.clone(),
            SimClock::new(),
            NullSink,
        )
        .expect("valid service config");
        run_workload(service, workload)
            .unwrap_or_else(|e| panic!("{name}/{process}: journal-off run failed: {e}"))
            .0
    };
    let run_on = || {
        let mut service = Service::new(
            workload.instance.clone(),
            make_policy(),
            cfg.clone(),
            SimClock::new(),
            NullSink,
        )
        .expect("valid service config");
        service
            .attach_journal(
                wal_dcfg,
                Box::new(SharedBuf::new()),
                Box::new(mris_service::NullSnapshots),
            )
            .expect("journal attaches to a pristine service");
        run_workload(service, workload)
            .unwrap_or_else(|e| panic!("{name}/{process}: journal-on run failed: {e}"))
            .0
    };
    let (mut report_off, mut report_on) = (run_off(), run_on()); // warmup pair
    for _ in 0..reps {
        let off = run_off();
        if off.summary.throughput_jobs_per_sec > report_off.summary.throughput_jobs_per_sec {
            report_off = off;
        }
        let on = run_on();
        if on.summary.throughput_jobs_per_sec > report_on.summary.throughput_jobs_per_sec {
            report_on = on;
        }
    }
    assert_eq!(
        report_off.schedule, report_on.schedule,
        "{name}/{process}: journaling changed the schedule"
    );
    assert_eq!(
        report_off.summary.awct.to_bits(),
        report_on.summary.awct.to_bits(),
        "{name}/{process}: journaling changed the AWCT"
    );

    // Snapshot pass: same run with periodic full-state snapshots; its
    // journal (and the snapshots' dcfg) feed the restore rows below.
    let journal = SharedBuf::new();
    let snapshots = MemorySnapshots::new();
    let mut service = Service::new(
        workload.instance.clone(),
        make_policy(),
        cfg.clone(),
        SimClock::new(),
        NullSink,
    )
    .expect("valid service config");
    service
        .attach_journal(dcfg, Box::new(journal.clone()), Box::new(snapshots.clone()))
        .expect("journal attaches to a pristine service");
    let (report_snap, _) = run_workload(service, workload)
        .unwrap_or_else(|e| panic!("{name}/{process}: snapshot run failed: {e}"));
    assert_eq!(
        report_off.schedule, report_snap.schedule,
        "{name}/{process}: snapshotting changed the schedule"
    );

    let off = report_off.summary.throughput_jobs_per_sec;
    let on = report_on.summary.throughput_jobs_per_sec;
    let snap_rate = report_snap.summary.throughput_jobs_per_sec;
    let overhead_pct = if off > 0.0 {
        (off - on) / off * 100.0
    } else {
        0.0
    };
    let within_budget = overhead_pct < 15.0;
    if !within_budget {
        eprintln!(
            "    WARNING: journal overhead {overhead_pct:.1}% exceeds the 15% budget \
             ({off:.0} -> {on:.0} jobs/s)"
        );
    }

    let golden = journal.contents();
    let epochs = report_snap.summary.epochs;
    let mut restore_rows = Vec::new();
    for fraction in [0.25f64, 0.5, 0.75, 1.0] {
        let cut = if fraction >= 1.0 {
            golden.len()
        } else {
            let cut_event = ((epochs as f64 * fraction) as usize).min(epochs.saturating_sub(1));
            truncate_at_event(&golden, cut_event).unwrap_or(golden.len())
        };
        let (_, restore) = Service::restore(
            workload.instance.clone(),
            make_policy(),
            cfg.clone(),
            dcfg,
            SimClock::new(),
            NullSink,
            &golden[..cut],
            None,
            RestoreOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{name}/{process}: restore at {fraction} failed: {e}"));
        eprintln!(
            "    restore @{:>3.0}%: {} records in {:.1} ms",
            fraction * 100.0,
            restore.records,
            restore.restore_seconds * 1e3
        );
        restore_rows.push(format!(
            concat!(
                "{{\"fraction\": {:.2}, \"journal_bytes\": {}, \"records\": {}, ",
                "\"regenerated\": {}, \"clean_shutdown\": {}, \"restore_seconds\": {:.6}}}"
            ),
            fraction,
            cut,
            restore.records,
            restore.regenerated,
            restore.clean_shutdown,
            restore.restore_seconds,
        ));
    }
    let _ = smoke;

    format!(
        concat!(
            "{{\"policy\": \"{}\", \"process\": \"{}\", ",
            "\"journal_off_jobs_per_sec\": {:.3}, \"journal_on_jobs_per_sec\": {:.3}, ",
            "\"overhead_pct\": {:.3}, \"overhead_budget_pct\": 15.0, \"within_budget\": {}, ",
            "\"snapshot_pass_jobs_per_sec\": {:.3}, ",
            "\"journal_bytes\": {}, \"snapshots\": {}, \"flush_every\": {}, ",
            "\"snapshot_every\": {}, \"restore\": [{}]}}"
        ),
        name,
        process,
        off,
        on,
        overhead_pct,
        within_budget,
        snap_rate,
        golden.len(),
        snapshots.all().len(),
        dcfg.flush_every,
        dcfg.snapshot_every,
        restore_rows.join(", "),
    )
}

/// TCP front-door pass: the same workload driven through `mris-net` over
/// loopback by a single client, against the in-process baseline. Reports
/// the per-submit round-trip latency distribution, the end-to-end
/// throughput ratio, and — in a second, contended 2-tenant run — how
/// close the deficit-round-robin gate lands to the configured 3:1 split.
fn run_net(process: &'static str, workload: &Workload, machines: usize, smoke: bool) -> String {
    let name = "pq-wsjf"; // cheap policy: the pass measures transport, not knapsack
    let instance = &workload.instance;

    // In-process baseline.
    let policy = online_policy_by_name(name, instance, machines)
        .expect("pq-wsjf resolves to an online policy");
    let service = Service::new(
        instance.clone(),
        policy,
        ServiceConfig::new(machines),
        SimClock::new(),
        NullSink,
    )
    .expect("valid service config");
    let (inproc_report, _) = run_workload(service, workload)
        .unwrap_or_else(|e| panic!("{name}/{process}: in-process run failed: {e}"));
    let inproc_rate = inproc_report.summary.throughput_jobs_per_sec;

    // Loopback TCP run: one client, submissions at release times in the
    // same (release, id) order, per-submit round trip timed client-side.
    let server = mris_net::serve_net(
        instance.clone(),
        ServiceConfig::new(machines),
        SimClock::new(),
        NullSink,
        {
            let policy_name = name;
            move |inst: &mris_types::Instance, m: usize| {
                online_policy_by_name(policy_name, inst, m).expect("validated above")
            }
        },
        "127.0.0.1:0",
    )
    .unwrap_or_else(|e| panic!("{name}/{process}: net bench bind failed: {e}"));
    let addr = server.addr().to_string();
    let mut client = mris_net::NetClient::connect(&addr, "", 0).expect("loopback connect succeeds");
    let mut order: Vec<mris_types::JobId> = instance.jobs().iter().map(|j| j.id).collect();
    order.sort_by(|&a, &b| {
        instance
            .job(a)
            .release
            .total_cmp(&instance.job(b).release)
            .then(a.cmp(&b))
    });
    let started = std::time::Instant::now();
    let mut rtts_us = Vec::with_capacity(order.len());
    for job in order {
        let at = instance.job(job).release;
        let t0 = std::time::Instant::now();
        client
            .submit_at(at, job)
            .unwrap_or_else(|e| panic!("{name}/{process}: submit over tcp failed: {e}"))
            .expect("permissive service admits everything");
        rtts_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let tcp_report = client
        .drain()
        .unwrap_or_else(|e| panic!("{name}/{process}: drain over tcp failed: {e}"));
    let elapsed = started.elapsed().as_secs_f64();
    server.wait().expect("net bench server joins cleanly");
    assert_eq!(
        inproc_report.schedule, tcp_report.schedule,
        "{name}/{process}: the wire changed the schedule"
    );
    let tcp_rate = tcp_report.summary.completed as f64 / elapsed.max(1e-9);
    let latency = Percentiles::of(&rtts_us).expect("submissions were timed");

    // Contended 2-tenant pass: alternating submissions lead releases so
    // the queue stands above the fair watermark, and two clients (weights
    // 3:1) hammer the same door concurrently-in-order.
    let fair_jobs = if smoke { 120 } else { 400 };
    let fair = {
        use mris_service::TenantSpec;
        let jobs: Vec<mris_types::Job> = (0..fair_jobs)
            .map(|i| {
                mris_types::Job::from_fractions(
                    mris_types::JobId(0),
                    0.05 * i as f64,
                    1.0,
                    1.0,
                    &[0.5],
                )
            })
            .collect();
        let instance = mris_types::Instance::from_unnumbered(jobs, 1).expect("valid fair instance");
        let cfg = ServiceConfig::builder(2)
            .tenants(vec![
                TenantSpec::new("alpha", "tok-a", 3.0),
                TenantSpec::new("beta", "tok-b", 1.0),
            ])
            .fair_watermark(4)
            .build()
            .expect("valid tenant config");
        let server = mris_net::serve_net(
            instance.clone(),
            cfg,
            SimClock::new(),
            NullSink,
            |inst: &mris_types::Instance, m: usize| {
                online_policy_by_name("pq-wsjf", inst, m).expect("known policy")
            },
            "127.0.0.1:0",
        )
        .expect("fair bench bind succeeds");
        let addr = server.addr().to_string();
        let mut alpha = mris_net::NetClient::connect(&addr, "tok-a", 0).expect("alpha connects");
        let mut beta = mris_net::NetClient::connect(&addr, "tok-b", 0).expect("beta connects");
        for job in instance.jobs() {
            let at = (job.release - 2.0).max(0.0);
            let who = if job.id.0 % 2 == 0 {
                &mut alpha
            } else {
                &mut beta
            };
            let _ = who
                .submit_at(at, job.id)
                .expect("fair bench submission round trip");
        }
        let report = beta.drain().expect("fair bench drain");
        server.wait().expect("fair bench server joins");
        let a = &report.tenants[0];
        let b = &report.tenants[1];
        let total = (a.admitted_cost + b.admitted_cost) as f64;
        let share = if total > 0.0 {
            a.admitted_cost as f64 / total
        } else {
            0.0
        };
        (share, a.rejected + b.rejected)
    };
    let (measured_share, fair_rejected) = fair;
    let abs_error = (measured_share - 0.75).abs();
    let within_5pct = abs_error <= 0.05;
    if !within_5pct {
        eprintln!(
            "    WARNING: 2-tenant split {measured_share:.3} strays from 0.75 \
             by more than 5 points"
        );
    }
    eprintln!(
        "    {process:>7}: tcp {tcp_rate:>8.0} jobs/s vs in-process {inproc_rate:>8.0} \
         ({:.1}%), submit rtt p50/p95/p99 = {:.1}/{:.1}/{:.1} us, \
         3:1 split measured {measured_share:.3}",
        tcp_rate / inproc_rate.max(1e-9) * 100.0,
        latency.p50,
        latency.p95,
        latency.p99,
    );

    format!(
        concat!(
            "{{\"policy\": \"{}\", \"process\": \"{}\", ",
            "\"inproc_jobs_per_sec\": {:.3}, \"tcp_jobs_per_sec\": {:.3}, ",
            "\"tcp_vs_inproc_ratio\": {:.4}, ",
            "\"submit_rtt_us\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}}, ",
            "\"fair_split\": {{\"weights\": [3.0, 1.0], \"target_share\": 0.75, ",
            "\"measured_share\": {:.4}, \"abs_error\": {:.4}, \"rejected\": {}, ",
            "\"within_5pct\": {}}}}}"
        ),
        name,
        process,
        inproc_rate,
        tcp_rate,
        tcp_rate / inproc_rate.max(1e-9),
        latency.p50,
        latency.p95,
        latency.p99,
        measured_share,
        abs_error,
        fair_rejected,
        within_5pct,
    )
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let machines = args.get("machines", if smoke { 4 } else { 8 });
    let jobs = args.get("jobs", if smoke { 150 } else { 2_000 });
    let seed = args.get("seed", 11u64);
    let utilization = args.get("utilization", 0.7);
    let out: String = args.get("out", "BENCH_service.json".to_string());

    eprintln!(
        "service bench: mode = {}, M = {machines}, N = {jobs}, seed = {seed}, \
         utilization = {utilization}",
        if smoke { "smoke" } else { "full" },
    );

    // Shape distribution is arrival-process independent for a fixed seed,
    // so probe once to calibrate the Poisson rate to the target utilization.
    let probe = generate_workload(&LoadGenConfig {
        num_jobs: jobs,
        seed,
        arrivals: ArrivalProcess::Bursts {
            period: 1.0,
            size: 1,
        },
    });
    let rate = poisson_rate_for_utilization(&probe.instance, machines, utilization);
    let burst_size = (jobs / 20).max(1);
    let workloads: [(&'static str, Workload); 2] = [
        (
            "poisson",
            generate_workload(&LoadGenConfig {
                num_jobs: jobs,
                seed,
                arrivals: ArrivalProcess::Poisson { rate },
            }),
        ),
        (
            "bursts",
            generate_workload(&LoadGenConfig {
                num_jobs: jobs,
                seed,
                arrivals: ArrivalProcess::Bursts {
                    period: burst_size as f64 / rate,
                    size: burst_size,
                },
            }),
        ),
    ];

    let names = ["mris", "pq-wsjf", "pq-wsvf", "tetris", "bf-exec", "ca-pq"];
    let mut reports = Vec::with_capacity(names.len());
    for name in names {
        eprintln!("  {name} ...");
        let rows: Vec<ServiceRow> = workloads
            .iter()
            .map(|(process, workload)| {
                let row = run_one(name, process, workload, machines);
                eprintln!(
                    "    {:>7}: {:>10.0} jobs/s, decision p50/p95/p99 = \
                     {:.1}/{:.1}/{:.1} us, {} epochs",
                    process,
                    row.throughput,
                    row.latency_us.p50,
                    row.latency_us.p95,
                    row.latency_us.p99,
                    row.epochs
                );
                row
            })
            .collect();
        reports.push(PolicyReport { name, rows });
    }

    eprintln!("  mris stage breakdown (obs-enabled pass) ...");
    let breakdowns: Vec<StageBreakdown> = workloads
        .iter()
        .map(|(process, workload)| {
            let b = stage_breakdown(process, workload, machines);
            let total: f64 = b.stages.iter().map(|(_, _, s)| s).sum();
            eprintln!(
                "    {:>7}: {:.1} ms across stages ({}), memo {}/{} hit/miss",
                b.process,
                total * 1e3,
                b.stages
                    .iter()
                    .map(|(stage, _, s)| format!("{stage} {:.1}ms", s * 1e3))
                    .collect::<Vec<_>>()
                    .join(", "),
                b.memo_hits,
                b.memo_misses
            );
            b
        })
        .collect();

    eprintln!("  durability overhead + restore latency (journaled mris pass) ...");
    let durability = run_durability("poisson", &workloads[0].1, machines, smoke);

    eprintln!("  net front door (loopback tcp pass) ...");
    let net = run_net("poisson", &workloads[0].1, machines, smoke);

    let schedulers: Vec<String> = reports
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    let breakdown_json: Vec<String> = breakdowns
        .iter()
        .map(|b| format!("    {}", b.to_json()))
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"service\",\n",
            "  \"version\": 4,\n",
            "  \"mode\": \"{}\",\n",
            "  \"machines\": {},\n",
            "  \"jobs\": {},\n",
            "  \"seed\": {},\n",
            "  \"utilization\": {},\n",
            "  \"poisson_rate\": {:.6},\n",
            "  \"schedulers\": [\n{}\n  ],\n",
            "  \"stage_breakdown\": [\n{}\n  ],\n",
            "  \"durability\": {},\n",
            "  \"net\": {}\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        machines,
        jobs,
        seed,
        utilization,
        rate,
        schedulers.join(",\n"),
        breakdown_json.join(",\n"),
        durability,
        net
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("  wrote {out}");
    print!("{json}");
}
