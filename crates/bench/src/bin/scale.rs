//! Cluster-width scaling benchmark (`BENCH_scale.json`).
//!
//! The shard worker pool exists for one reason: `earliest_fit` over wide
//! clusters. This bin prices that path at 64, 1 000, and 10 000 machines
//! and prints the throughputs the repo's claims rest on:
//!
//! * `scan` — the fragmented-cluster earliest-fit query script from the
//!   `timeline` bench, replayed against three policies over identical
//!   state: **sharded** (the persistent worker pool, forced via
//!   `set_parallel_threshold(1)`), **sequential** (the cutoff-pruned
//!   single-thread scan, forced via `set_parallel_threshold(usize::MAX)`),
//!   and **scoped** (the pre-fix per-query `std::thread::scope` replica;
//!   skipped above 1 000 machines where per-query spawning is hopeless).
//!   All three must return bit-identical `(machine, start)` answers.
//! * `placement` — end-to-end place-and-commit throughput of the shipped
//!   policy (pool above `PARALLEL_SCAN_THRESHOLD`, sequential below) on an
//!   arrival stream with periodic compaction: machines × jobs grid up to
//!   10 000 machines and 1 000 000 jobs.
//!
//! An obs subscriber is installed for the whole run, so the emitted JSON
//! also carries the `mris_shard_*` counter totals (wakeups, steals,
//! probes) as a coarse pool-health cross-check.
//!
//! `cargo run --release -p mris-bench --bin scale [--smoke] [--gate]
//!  [--seed 7] [--out BENCH_scale.json]`
//!
//! `--smoke` shrinks the grid to {64, 1 000} machines and a few thousand
//! jobs so CI finishes in seconds. `--gate` exits non-zero unless the
//! sharded scan is at least as fast as the sequential scan at 1 000
//! machines — the regression tripwire for the pool.

use std::sync::Arc;
use std::time::Instant;

use mris_bench::scan::{
    fragmented_cluster, fragmented_horizon, mixed_scan_script, old_scoped_scan,
};
use mris_bench::Args;
use mris_obs::Obs;
use mris_rng::Rng;
use mris_sim::ClusterTimelines;
use mris_types::{amount_from_fraction, Amount};

/// The widest cluster the scoped-thread replica is still measured at;
/// above this its per-query spawn cost makes full runs take minutes for a
/// number nobody disputes, so the cell is emitted as `null`.
const SCOPED_MAX_MACHINES: usize = 1_000;

/// Fraction of scan queries probing at the committed horizon (instant
/// floor fit) rather than deep inside the fragmentation; mirrors an
/// arrival stream placing at the clock frontier, where fixed per-query
/// overhead — the pre-fix scan's thread spawns — dominates.
const FRONTIER_FRACTION: f64 = 0.85;

/// One scan-comparison cell of the machines grid.
struct ScanCell {
    machines: usize,
    queries: usize,
    sharded_elapsed_s: f64,
    sequential_elapsed_s: f64,
    scoped_elapsed_s: Option<f64>,
}

impl ScanCell {
    fn sharded_ops(&self) -> f64 {
        self.queries as f64 / self.sharded_elapsed_s.max(1e-12)
    }

    fn sequential_ops(&self) -> f64 {
        self.queries as f64 / self.sequential_elapsed_s.max(1e-12)
    }

    fn scoped_ops(&self) -> Option<f64> {
        self.scoped_elapsed_s
            .map(|s| self.queries as f64 / s.max(1e-12))
    }

    fn speedup_vs_sequential(&self) -> f64 {
        self.sequential_elapsed_s / self.sharded_elapsed_s.max(1e-12)
    }

    fn speedup_vs_scoped(&self) -> Option<f64> {
        self.scoped_elapsed_s
            .map(|s| s / self.sharded_elapsed_s.max(1e-12))
    }

    fn to_json(&self) -> String {
        let fmt_opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.1}"),
            None => "null".to_string(),
        };
        let fmt_opt2 = |v: Option<f64>| match v {
            Some(v) => format!("{v:.2}"),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"machines\": {}, \"queries\": {}, ",
                "\"sharded_ops_per_sec\": {:.1}, ",
                "\"sequential_ops_per_sec\": {:.1}, ",
                "\"scoped_ops_per_sec\": {}, ",
                "\"speedup_vs_sequential\": {:.2}, ",
                "\"speedup_vs_scoped\": {}}}"
            ),
            self.machines,
            self.queries,
            self.sharded_ops(),
            self.sequential_ops(),
            fmt_opt(self.scoped_ops()),
            self.speedup_vs_sequential(),
            fmt_opt2(self.speedup_vs_scoped()),
        )
    }
}

/// One placement-throughput cell of the machines × jobs grid.
struct PlacementCell {
    machines: usize,
    jobs: usize,
    elapsed_s: f64,
    segments: usize,
}

impl PlacementCell {
    fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.elapsed_s.max(1e-12)
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"machines\": {}, \"jobs\": {}, ",
                "\"jobs_per_sec\": {:.1}, \"segments\": {}}}"
            ),
            self.machines,
            self.jobs,
            self.jobs_per_sec(),
            self.segments,
        )
    }
}

/// Replays the query script against one cluster variant, asserting it
/// reproduces the expected answers exactly.
fn run_script(
    cluster: &ClusterTimelines,
    script: &[(f64, f64, Vec<Amount>)],
    expect: Option<&[(usize, f64)]>,
    label: &str,
) -> (f64, Vec<(usize, f64)>) {
    let mut answers = Vec::with_capacity(script.len());
    let t0 = Instant::now();
    for (from, dur, demands) in script {
        answers.push(cluster.earliest_fit(*from, *dur, demands));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    if let Some(expect) = expect {
        assert_eq!(answers, expect, "{label} scan diverged");
    }
    (elapsed, answers)
}

/// Scan comparison at one cluster width: identical fragmented state and
/// query script, three scan policies, bit-identical answers required.
fn scan_cell(machines: usize, queries: usize, depth: usize, seed: u64) -> ScanCell {
    let resources = 2;
    let mut rng = Rng::new(seed);
    let sequential = {
        let mut c = fragmented_cluster(machines, resources, depth, &mut rng);
        c.set_parallel_threshold(usize::MAX);
        c
    };
    let sharded = {
        let mut c = sequential.clone();
        c.set_parallel_threshold(1);
        c
    };
    let horizon = fragmented_horizon(depth);
    let script = mixed_scan_script(queries, horizon, resources, FRONTIER_FRACTION, &mut rng);

    // Sequential first: its answers are the reference the other two
    // policies are checked against. Both cheap policies are measured
    // min-of-3 so single-run scheduler jitter doesn't decide parity-level
    // comparisons (on single-core hosts the pool degrades to the caller
    // scanning alone, and the honest ratio is ~1.0x).
    const REPS: usize = 3;
    let (mut sequential_elapsed_s, reference) =
        run_script(&sequential, &script, None, "sequential");
    for _ in 1..REPS {
        let (t, _) = run_script(&sequential, &script, Some(&reference), "sequential");
        sequential_elapsed_s = sequential_elapsed_s.min(t);
    }
    // Warm the pool (first query spawns the workers), then measure.
    run_script(&sharded, &script[..1.min(script.len())], None, "warmup");
    let (mut sharded_elapsed_s, _) = run_script(&sharded, &script, Some(&reference), "sharded");
    for _ in 1..REPS {
        let (t, _) = run_script(&sharded, &script, Some(&reference), "sharded");
        sharded_elapsed_s = sharded_elapsed_s.min(t);
    }

    let scoped_elapsed_s = (machines <= SCOPED_MAX_MACHINES).then(|| {
        let mut answers = Vec::with_capacity(script.len());
        let t0 = Instant::now();
        for (from, dur, demands) in &script {
            answers.push(old_scoped_scan(&sequential, *from, *dur, demands));
        }
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(answers, reference, "scoped scan diverged");
        elapsed
    });

    ScanCell {
        machines,
        queries,
        sharded_elapsed_s,
        sequential_elapsed_s,
        scoped_elapsed_s,
    }
}

/// End-to-end placement throughput of the shipped scan policy: an arrival
/// stream of moderate-load jobs, each placed with `earliest_fit` and
/// committed, with the cluster compacted behind a sliding window every
/// few thousand placements so 1M-job runs stay bounded.
fn placement_cell(machines: usize, jobs: usize, seed: u64) -> PlacementCell {
    let resources = 2;
    let mut rng = Rng::new(seed);
    let mut cluster = ClusterTimelines::new(machines, resources);
    // Mean inter-arrival tuned so the cluster hovers at partial load:
    // durations average ~2.2 time units and each job takes ~0.2 of one
    // machine, so `machines / 12` jobs arrive per unit time.
    let dt = 12.0 / machines as f64;
    let script: Vec<(f64, Vec<Amount>)> = (0..jobs)
        .map(|_| {
            (
                rng.gen_range(0.5..4.0),
                (0..resources)
                    .map(|_| amount_from_fraction(rng.gen_range(0.05..0.35)))
                    .collect(),
            )
        })
        .collect();

    let mut clock = 0.0f64;
    let t0 = Instant::now();
    for (i, (dur, demands)) in script.iter().enumerate() {
        clock += dt;
        let from = clock.max(cluster.machine(0).compaction_watermark());
        let (m, s) = cluster.earliest_fit(from, *dur, demands);
        cluster.commit(m, s, *dur, demands);
        if i % 4096 == 4095 {
            cluster.compact_before(clock - 30.0);
        }
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    PlacementCell {
        machines,
        jobs,
        elapsed_s,
        segments: cluster.total_segments(),
    }
}

fn shard_counter(name: &'static str) -> u64 {
    mris_obs::with(|obs| obs.registry().counter_value(name, None).unwrap_or(0)).unwrap_or(0)
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let gate = args.has("gate");
    let seed = args.get("seed", 7u64);
    let out: String = args.get("out", "BENCH_scale.json".to_string());

    // Counters survive the whole run; the JSON reports their totals.
    let _obs = mris_obs::install_guard(Arc::new(Obs::new()));

    // (machines, queries, fragmentation depth) for the scan comparison,
    // and (machines, jobs) for the placement grid.
    let scan_grid: &[(usize, usize, usize)] = if smoke {
        &[(64, 80, 40), (1_000, 40, 40)]
    } else {
        &[(64, 2_000, 200), (1_000, 600, 200), (10_000, 120, 100)]
    };
    let placement_grid: &[(usize, usize)] = if smoke {
        &[(64, 2_000), (1_000, 2_000)]
    } else {
        &[
            (64, 10_000),
            (64, 1_000_000),
            (1_000, 10_000),
            (1_000, 1_000_000),
            (10_000, 10_000),
            (10_000, 1_000_000),
        ]
    };

    eprintln!(
        "scale bench: mode = {}, seed = {seed}",
        if smoke { "smoke" } else { "full" }
    );

    let mut scan_cells = Vec::new();
    for &(machines, queries, depth) in scan_grid {
        eprintln!("  scan: {queries} queries over {machines} machines (depth {depth}) ...");
        let cell = scan_cell(machines, queries, depth, seed ^ machines as u64);
        match cell.scoped_ops() {
            Some(scoped) => eprintln!(
                "    sharded {:.0} ops/s, sequential {:.0} ops/s ({:.2}x), scoped {:.0} ops/s ({:.2}x)",
                cell.sharded_ops(),
                cell.sequential_ops(),
                cell.speedup_vs_sequential(),
                scoped,
                cell.speedup_vs_scoped().unwrap(),
            ),
            None => eprintln!(
                "    sharded {:.0} ops/s, sequential {:.0} ops/s ({:.2}x), scoped skipped",
                cell.sharded_ops(),
                cell.sequential_ops(),
                cell.speedup_vs_sequential(),
            ),
        }
        scan_cells.push(cell);
    }

    let mut placement_cells = Vec::new();
    for &(machines, jobs) in placement_grid {
        eprintln!("  placement: {jobs} jobs on {machines} machines ...");
        let cell = placement_cell(machines, jobs, seed ^ 0x91ace_u64 ^ jobs as u64);
        eprintln!(
            "    {:.0} jobs/s, {} segments at drain",
            cell.jobs_per_sec(),
            cell.segments
        );
        placement_cells.push(cell);
    }

    let wakeups = shard_counter("mris_shard_wakeups_total");
    let steals = shard_counter("mris_shard_steals_total");
    let probes = shard_counter("mris_shard_probes_total");
    eprintln!("  shard counters: wakeups {wakeups}, steals {steals}, probes {probes}");

    let scan_json: Vec<String> = scan_cells
        .iter()
        .map(|c| format!("    {}", c.to_json()))
        .collect();
    let placement_json: Vec<String> = placement_cells
        .iter()
        .map(|c| format!("    {}", c.to_json()))
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scale\",\n",
            "  \"version\": 1,\n",
            "  \"mode\": \"{}\",\n",
            "  \"seed\": {},\n",
            "  \"scan\": [\n{}\n  ],\n",
            "  \"placement\": [\n{}\n  ],\n",
            "  \"shard_counters\": {{\"wakeups\": {}, \"steals\": {}, \"probes\": {}}}\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        seed,
        scan_json.join(",\n"),
        placement_json.join(",\n"),
        wakeups,
        steals,
        probes,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("  wrote {out}");
    print!("{json}");

    if gate {
        let cell = scan_cells
            .iter()
            .find(|c| c.machines == 1_000)
            .expect("gate requires a 1000-machine scan cell");
        let speedup = cell.speedup_vs_sequential();
        if speedup < 1.0 {
            eprintln!(
                "GATE FAILED: sharded scan {speedup:.2}x sequential at 1000 machines (need >= 1.0x)"
            );
            std::process::exit(1);
        }
        eprintln!("gate ok: sharded scan {speedup:.2}x sequential at 1000 machines");
    }
}
