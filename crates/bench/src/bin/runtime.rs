//! Runtime scaling experiment (Section 5.3's complexity claims).
//!
//! Measures wall-clock scheduling time vs N for MRIS-CADP (`O(N^3 / eps)`
//! worst case), MRIS-GREEDY (`O(N^2 log N)`), and PQ (`O(N^2)`), and
//! reports the empirical growth exponent between consecutive sweep points
//! (`log(t2/t1) / log(n2/n1)`). On trace workloads, MRIS's knapsack rarely
//! hits its worst case — the observed exponents sit well below the bounds.
//!
//! `cargo run --release -p mris-bench --bin runtime [--sweep a,b,c]
//!  [--machines m] [--csv]`

use mris_bench::{default_trace, Args, Scale};
use mris_core::registry::algorithms_by_names;
use mris_metrics::Table;
use mris_schedulers::Scheduler;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let sweep = args.get_list("sweep", &[1_000, 2_000, 4_000, 8_000, 16_000]);
    eprintln!("runtime: N sweep {:?}, M = {}", sweep, scale.machines);
    let pool = default_trace(&scale);

    let algorithms: Vec<Box<dyn Scheduler>> =
        algorithms_by_names(["mris", "mris-greedy", "pq-wsjf"])
            .expect("runtime sweep algorithms are registered");

    let mut headers = vec!["N".to_string()];
    for algo in &algorithms {
        headers.push(format!("{} [ms]", algo.name()));
        headers.push("exp".to_string());
    }
    let mut table = Table::new(headers);
    let mut previous: Vec<Option<(usize, f64)>> = vec![None; algorithms.len()];

    for &n in &sweep {
        let instance = pool.instances_for(n, 1).remove(0);
        let mut cells = vec![n.to_string()];
        for (i, algo) in algorithms.iter().enumerate() {
            let t0 = Instant::now();
            let schedule = algo.schedule(&instance, scale.machines);
            let elapsed = t0.elapsed().as_secs_f64() * 1e3;
            assert!(schedule.is_complete());
            let exponent = previous[i]
                .map(|(pn, pt)| (elapsed / pt).ln() / (n as f64 / pn as f64).ln())
                .map(|e| format!("{e:.2}"))
                .unwrap_or_else(|| "-".to_string());
            previous[i] = Some((n, elapsed));
            cells.push(format!("{elapsed:.1}"));
            cells.push(exponent);
        }
        table.push_row(cells);
        eprintln!("  N = {n}: done");
    }

    println!(
        "\nRuntime scaling (M = {}; `exp` = empirical growth exponent between\n\
         consecutive N; Section 5.3 worst-case bounds: MRIS-CADP O(N^3/eps),\n\
         MRIS-GREEDY O(N^2 log N), PQ O(N^2)):\n",
        scale.machines
    );
    scale.print_table(&table);
}
