//! Figure 4: effect of the number of machines on AWCT at fixed N.
//!
//! Expected shape (paper): with few machines (heavy contention) MRIS wins by
//! up to ~2x over Tetris; with many machines contention vanishes and plain
//! PQ-WSVF suffices, slightly beating MRIS whose interval construction then
//! under-utilizes the cluster.
//!
//! `cargo run --release -p mris-bench --bin fig4 [--paper] [--n jobs]
//!  [--machines-sweep a,b,c] [--samples k] [--csv]`

use mris_bench::{awct_summaries, comparison_algorithms, default_trace, Args, Scale};
use mris_metrics::Table;

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let default_sweep: &[usize] = if args.has("paper") {
        &[5, 10, 20, 40, 80]
    } else {
        &[2, 3, 5, 10, 20, 40]
    };
    let machine_sweep = args.get_list("machines-sweep", default_sweep);
    eprintln!(
        "fig4: M sweep {:?}, N = {}, {} samples",
        machine_sweep, scale.n_fixed, scale.samples
    );
    let pool = default_trace(&scale);
    let instances = pool.instances_for(scale.n_fixed, scale.samples);
    let algorithms = comparison_algorithms();

    let mut headers = vec!["M".to_string()];
    headers.extend(algorithms.iter().map(|a| a.name()));
    let mut table = Table::new(headers);
    for &m in &machine_sweep {
        let t0 = std::time::Instant::now();
        let rows = awct_summaries(&algorithms, &instances, m);
        let mut cells = vec![m.to_string()];
        cells.extend(
            rows.iter()
                .map(|(_, s)| format!("{:.1} ± {:.1}", s.mean, s.ci95_half_width())),
        );
        table.push_row(cells);
        eprintln!("  M = {m}: done in {:.1?}", t0.elapsed());
    }

    println!(
        "\nFigure 4 — AWCT vs number of machines (N = {}):\n",
        scale.n_fixed
    );
    scale.print_table(&table);
}
