//! Queue-dynamics extension experiment: running-job and backlog time series
//! for the event-driven schedulers, next to MRIS's batch occupancy.
//!
//! Renders, per algorithm, the number of concurrently *running* jobs over
//! time as an ASCII strip — making the mechanism behind Figures 3/5 visible:
//! the event-driven schedulers saturate instantly and stay saturated; MRIS
//! ramps up in geometric waves.
//!
//! `cargo run --release -p mris-bench --bin dynamics [--n jobs] [--machines m]`

use mris_bench::{default_trace, Args, Scale};
use mris_core::Mris;
use mris_metrics::render_utilization;
use mris_schedulers::{PqPolicy, Scheduler, SortHeuristic, TetrisPolicy};
use mris_sim::{run_online_observed, EventSnapshot};
use mris_types::Instance;

/// Samples `snapshots` (running counts) into `buckets` buckets over
/// `[0, horizon)` by last-value-before-bucket-end.
fn running_series(snapshots: &[EventSnapshot], horizon: f64, buckets: usize) -> Vec<f64> {
    let mut out = vec![0.0; buckets];
    let mut idx = 0;
    let mut last = 0.0;
    for (b, slot) in out.iter_mut().enumerate() {
        let t_end = (b + 1) as f64 * horizon / buckets as f64;
        while idx < snapshots.len() && snapshots[idx].time <= t_end {
            last = snapshots[idx].running as f64;
            idx += 1;
        }
        *slot = last;
    }
    out
}

fn main() {
    let args = Args::parse();
    let mut scale = Scale::from_args(&args);
    if !args.has("n") && !args.has("paper") {
        scale.n_fixed = 4_000;
    }
    eprintln!("dynamics: N = {}, M = {}", scale.n_fixed, scale.machines);
    let pool = default_trace(&scale);
    let instance = pool.instances_for(scale.n_fixed, 1).remove(0);

    // Event-driven schedulers through the observed engine.
    let mut series: Vec<(String, Vec<EventSnapshot>, f64)> = Vec::new();
    let mut record = |name: String, snaps: Vec<EventSnapshot>, makespan: f64| {
        series.push((name, snaps, makespan));
    };

    let mut snaps = Vec::new();
    let mut pq = PqPolicy::new(SortHeuristic::Wsjf);
    let s = run_online_observed(&instance, scale.machines, &mut pq, |e| snaps.push(*e))
        .expect("PQ is work-conserving");
    record("PQ-WSJF".into(), snaps, s.makespan(&instance));

    let mut snaps = Vec::new();
    let mut tetris = TetrisPolicy::new(1.0);
    let s = run_online_observed(&instance, scale.machines, &mut tetris, |e| snaps.push(*e))
        .expect("Tetris is work-conserving");
    record("TETRIS".into(), snaps, s.makespan(&instance));

    let mut snaps = Vec::new();
    let mut bf = mris_schedulers::BfExecPolicy::new();
    let s = run_online_observed(&instance, scale.machines, &mut bf, |e| snaps.push(*e))
        .expect("BF-EXEC is work-conserving");
    record("BF-EXEC".into(), snaps, s.makespan(&instance));

    // MRIS is not event-driven; derive its running-count series from the
    // final schedule's start/end events.
    let mris_schedule = Mris::default().schedule(&instance, scale.machines);
    let mris_makespan = mris_schedule.makespan(&instance);
    let mris_snaps = schedule_to_snapshots(&instance, &mris_schedule);
    series.push(("MRIS-WSJF".into(), mris_snaps, mris_makespan));

    let horizon = series
        .iter()
        .map(|(_, _, mk)| *mk)
        .fold(0.0_f64, f64::max)
        .ceil();
    let peak = series
        .iter()
        .flat_map(|(_, snaps, _)| snaps.iter().map(|s| s.running))
        .max()
        .unwrap_or(1)
        .max(1) as f64;

    println!(
        "\nConcurrently running jobs over [0, {horizon}) (N = {}, M = {};\n\
         each strip normalized to the global peak of {} running jobs):\n",
        scale.n_fixed, scale.machines, peak as usize
    );
    for (name, snaps, _) in &series {
        let s = running_series(snaps, horizon, 72);
        let normalized: Vec<f64> = s.iter().map(|&v| v / peak).collect();
        println!("{name:>10} |{}|", render_utilization(&normalized));
    }
}

/// Reconstructs running-count snapshots from a completed schedule.
fn schedule_to_snapshots(
    instance: &Instance,
    schedule: &mris_types::Schedule,
) -> Vec<EventSnapshot> {
    let mut events: Vec<(f64, i64)> = Vec::new();
    for a in schedule.assignments() {
        let p = instance.job(a.job).proc_time;
        events.push((a.start, 1));
        events.push((a.start + p, -1));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut running = 0i64;
    let mut placed = 0usize;
    events
        .iter()
        .map(|&(t, delta)| {
            running += delta;
            if delta > 0 {
                placed += 1;
            }
            EventSnapshot {
                time: t,
                running: running as usize,
                placed,
                released: instance.len(),
            }
        })
        .collect()
}
