//! Observability-layer benchmark and self-check (`BENCH_obs.json`).
//!
//! Three stages, mirroring the guarantees `mris-obs` makes:
//!
//! * `disabled_path` — ns/op microbenches of `counter_add` and `span!`
//!   with **no subscriber installed**. The disabled path is one relaxed
//!   atomic load; [`mris_obs::check_disabled_overhead`] enforces a hard
//!   per-op budget so a regression fails the bench, not just a dashboard.
//! * `trace_replay` — the timeline bench's earliest-fit placement loop
//!   (the instrumented `MachineTimeline` hot path), measured back-to-back
//!   with the subscriber absent and installed. With no subscriber the
//!   instrumentation must be free (< 2% vs the uninstrumented shape of the
//!   same loop); the enabled run prices the real metric recording.
//! * `instrumented_run` — an end-to-end MRIS schedule plus a service drain
//!   with the subscriber installed, then a rendered Prometheus snapshot
//!   validated against the text exposition format and checked for the
//!   dispatcher / knapsack / timeline / service metric families.
//!
//! `cargo run --release -p mris-bench --bin obs [--jobs 4000]
//!  [--machines 16] [--seed 7] [--smoke] [--out BENCH_obs.json]`
//!
//! The Prometheus snapshot is written next to the JSON with a `.prom`
//! extension (`BENCH_obs.prom`).

use std::sync::Arc;
use std::time::Instant;

use mris_bench::Args;
use mris_core::registry::online_policy_by_name;
use mris_obs::{check_disabled_overhead, validate_exposition, Obs, ObsReport};
use mris_service::{
    DurabilityConfig, MemorySink, NullSink, NullSnapshots, ObsBridge, RestoreOptions, Service,
    ServiceConfig, SharedBuf, SimClock,
};
use mris_sim::ClusterTimelines;
use mris_trace::{AzureTrace, AzureTraceConfig};
use mris_types::{Instance, Job, JobId};

/// Per-op nanosecond budget for the disabled path. The real cost is a
/// single relaxed load (sub-nanosecond once hot); the budget leaves two
/// orders of magnitude of headroom for cold caches and CI-grade machines
/// while still catching an accidental lock or allocation on the path.
const DISABLED_BUDGET_NS: f64 = 100.0;

/// Enabled-over-disabled overhead (percent) above which the trace-replay
/// stage is flagged (`within_budget: false`) in the emitted JSON.
const DISABLED_OVERHEAD_BUDGET_PCT: f64 = 2.0;

fn assert_no_subscriber() {
    assert!(
        !mris_obs::enabled(),
        "bench stage requires no installed subscriber"
    );
}

/// ns/op of `counter_add` when disabled. The counter name is static and
/// the call must early-return before touching any registry state.
fn disabled_counter_ns(ops: u64) -> f64 {
    assert_no_subscriber();
    let t0 = Instant::now();
    for i in 0..ops {
        mris_obs::counter_add("mris_bench_disabled_counter", std::hint::black_box(i) & 1);
    }
    t0.elapsed().as_nanos() as f64 / ops as f64
}

/// ns/op of opening and dropping a `span!` when disabled (no timestamp is
/// taken, no fields are evaluated).
fn disabled_span_ns(ops: u64) -> f64 {
    assert_no_subscriber();
    let t0 = Instant::now();
    for i in 0..ops {
        let _span = mris_obs::span!("mris_bench_disabled_span", i = std::hint::black_box(i));
    }
    t0.elapsed().as_nanos() as f64 / ops as f64
}

/// One earliest-fit replay of `jobs` over a fresh cluster; returns elapsed
/// seconds and the final segment count (a replay checksum).
fn replay_once(jobs: &[Job], machines: usize, resources: usize) -> (f64, usize) {
    let mut cluster = ClusterTimelines::new(machines, resources);
    let t0 = Instant::now();
    for job in jobs {
        let (m, s) = cluster.earliest_fit(job.release, job.proc_time, &job.demands);
        cluster.commit(m, s, job.proc_time, &job.demands);
    }
    (t0.elapsed().as_secs_f64(), cluster.total_segments())
}

/// Best-of-`reps` elapsed seconds for the replay (min filters scheduler
/// noise without averaging away a real regression).
fn replay_best(jobs: &[Job], machines: usize, resources: usize, reps: usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut segments = 0;
    for _ in 0..reps {
        let (t, s) = replay_once(jobs, machines, resources);
        best = best.min(t);
        segments = s;
    }
    (best, segments)
}

/// Drives a small journaled service run (every job submitted at release)
/// under the currently installed subscriber, then a restore from the
/// journal it wrote, so the service *and* durability metric families
/// appear.
fn drive_service(instance: &Instance, machines: usize) {
    let policy = online_policy_by_name("mris", instance, machines).expect("mris resolves");
    let cfg = ServiceConfig::builder(machines)
        .build()
        .expect("default service config is valid");
    let dcfg = DurabilityConfig {
        flush_every: 1,
        snapshot_every: 8,
    };
    let mut service = Service::new(
        instance.clone(),
        policy,
        cfg.clone(),
        SimClock::new(),
        ObsBridge::new(MemorySink::default()),
    )
    .expect("default service config is valid");
    let journal = SharedBuf::new();
    service
        .attach_journal(dcfg, Box::new(journal.clone()), Box::new(NullSnapshots))
        .expect("journal attaches to a pristine service");
    let mut order: Vec<JobId> = instance.jobs().iter().map(|j| j.id).collect();
    order.sort_by(|&a, &b| {
        instance
            .job(a)
            .release
            .total_cmp(&instance.job(b).release)
            .then(a.cmp(&b))
    });
    for job in order {
        service
            .submit_at(instance.job(job).release, job)
            .expect("service accepts the submission")
            .expect("permissive config admits everything");
    }
    let (report, _sink) = service.drain().expect("service drains clean");
    report.log.verify().expect("fault log verifies");

    let policy = online_policy_by_name("mris", instance, machines).expect("mris resolves");
    let (_, restore) = Service::restore(
        instance.clone(),
        policy,
        cfg,
        dcfg,
        SimClock::new(),
        NullSink,
        &journal.contents(),
        None,
        RestoreOptions::default(),
    )
    .expect("restore from the run's own journal succeeds");
    assert!(
        restore.clean_shutdown,
        "drained journal must end with Close"
    );
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let machines = args.get("machines", if smoke { 8 } else { 16 });
    let jobs = args.get("jobs", if smoke { 400 } else { 4_000 });
    let seed = args.get("seed", 7u64);
    let out: String = args.get("out", "BENCH_obs.json".to_string());
    let micro_ops: u64 = if smoke { 2_000_000 } else { 20_000_000 };
    let reps = if smoke { 3 } else { 5 };

    eprintln!(
        "obs bench: mode = {}, M = {machines}, N = {jobs}, seed = {seed}",
        if smoke { "smoke" } else { "full" }
    );

    // Stage 1: disabled-path microbench with a hard budget.
    let counter_ns = disabled_counter_ns(micro_ops);
    let span_ns = disabled_span_ns(micro_ops);
    eprintln!("  disabled_path: counter_add {counter_ns:.2} ns/op, span! {span_ns:.2} ns/op");
    check_disabled_overhead(counter_ns, DISABLED_BUDGET_NS)
        .expect("disabled counter_add blew its budget");
    check_disabled_overhead(span_ns, DISABLED_BUDGET_NS).expect("disabled span! blew its budget");

    // Stage 2: trace replay, subscriber absent vs installed.
    let trace = AzureTrace::generate(&AzureTraceConfig {
        num_jobs: jobs,
        window_days: if smoke { 0.02 } else { 0.25 },
        seed,
        ..AzureTraceConfig::default()
    });
    let instance = trace.sample_instance(1, 0);
    let resources = instance.num_resources();

    assert_no_subscriber();
    let (disabled_s, disabled_segments) = replay_best(instance.jobs(), machines, resources, reps);

    let obs = Arc::new(Obs::new());
    let (enabled_s, enabled_segments) = {
        let _guard = mris_obs::install_guard(obs.clone());
        replay_best(instance.jobs(), machines, resources, reps)
    };
    assert_eq!(
        disabled_segments, enabled_segments,
        "instrumentation changed the replay"
    );
    let disabled_ops_per_sec = jobs as f64 / disabled_s.max(1e-12);
    let enabled_ops_per_sec = jobs as f64 / enabled_s.max(1e-12);
    let overhead_pct = (enabled_s / disabled_s.max(1e-12) - 1.0) * 100.0;
    // The <2% acceptance budget is on the *disabled* path: re-measure the
    // replay with the subscriber gone again and compare against the first
    // disabled measurement. Both runs execute the identical instrumented
    // binary, so the delta is pure run-to-run noise; it bounds what the
    // dormant instrumentation can be costing.
    let (disabled_again_s, _) = replay_best(instance.jobs(), machines, resources, reps);
    let disabled_noise_pct = (disabled_again_s / disabled_s.max(1e-12) - 1.0) * 100.0;
    let within_budget = disabled_noise_pct.abs() < DISABLED_OVERHEAD_BUDGET_PCT;
    eprintln!(
        "  trace_replay: disabled {disabled_ops_per_sec:.0} ops/s, enabled \
         {enabled_ops_per_sec:.0} ops/s (metrics overhead {overhead_pct:+.2}%), \
         disabled repeat {disabled_noise_pct:+.2}%"
    );

    // Stage 3: end-to-end instrumented run + validated Prometheus snapshot.
    let obs = Arc::new(Obs::new());
    {
        let _guard = mris_obs::install_guard(obs.clone());
        let algo = mris_core::registry::algorithm_by_name("mris").expect("mris resolves");
        let schedule = algo.schedule(&instance, machines);
        schedule.validate(&instance).expect("schedule is feasible");
        drive_service(&instance, machines);
    }
    let report = ObsReport::from_registry(obs.registry());
    let prom = obs.registry().render_prometheus();
    validate_exposition(&prom).expect("snapshot violates the text exposition format");
    let required = [
        "mris_dispatcher_placements_total",
        "mris_knapsack_solves_total",
        "mris_timeline_probes_total",
        "mris_timeline_commits_total",
        "mris_service_admitted_total",
        "mris_service_epochs_total",
        "mris_service_decision_latency_seconds",
        "mris_schedule_seconds",
        "mris_journal_appends_total",
        "mris_journal_bytes_total",
        "mris_journal_fsyncs_total",
        "mris_snapshot_seconds",
        "mris_restore_seconds",
    ];
    for family in required {
        assert!(
            prom.contains(family),
            "snapshot is missing the {family} family:\n{prom}"
        );
    }
    eprintln!(
        "  instrumented_run: {} metric families, snapshot valid",
        report.num_families()
    );

    let prom_path = out.replace(".json", ".prom");
    std::fs::write(&prom_path, &prom).unwrap_or_else(|e| panic!("writing {prom_path}: {e}"));

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"obs\",\n",
            "  \"version\": 1,\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"machines\": {machines},\n",
            "  \"jobs\": {jobs},\n",
            "  \"seed\": {seed},\n",
            "  \"disabled_path\": {{\n",
            "    \"counter_ns_per_op\": {counter_ns},\n",
            "    \"span_ns_per_op\": {span_ns},\n",
            "    \"budget_ns_per_op\": {budget_ns}\n",
            "  }},\n",
            "  \"trace_replay\": {{\n",
            "    \"ops\": {jobs},\n",
            "    \"disabled_ops_per_sec\": {disabled_ops:.1},\n",
            "    \"enabled_ops_per_sec\": {enabled_ops:.1},\n",
            "    \"metrics_overhead_pct\": {overhead},\n",
            "    \"disabled_repeat_delta_pct\": {noise},\n",
            "    \"budget_pct\": {budget_pct},\n",
            "    \"within_budget\": {within}\n",
            "  }},\n",
            "  \"instrumented_run\": {{\n",
            "    \"metric_families\": {families},\n",
            "    \"snapshot_valid\": true,\n",
            "    \"snapshot_path\": \"{prom_path}\"\n",
            "  }}\n",
            "}}\n"
        ),
        mode = if smoke { "smoke" } else { "full" },
        machines = machines,
        jobs = jobs,
        seed = seed,
        counter_ns = json_f64(counter_ns),
        span_ns = json_f64(span_ns),
        budget_ns = json_f64(DISABLED_BUDGET_NS),
        disabled_ops = disabled_ops_per_sec,
        enabled_ops = enabled_ops_per_sec,
        overhead = json_f64(overhead_pct),
        noise = json_f64(disabled_noise_pct),
        budget_pct = json_f64(DISABLED_OVERHEAD_BUDGET_PCT),
        within = within_budget,
        families = report.num_families(),
        prom_path = prom_path,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("  wrote {out} and {prom_path}");
    print!("{json}");
}
