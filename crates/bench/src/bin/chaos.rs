//! Fault-injection benchmark (`BENCH_chaos.json`).
//!
//! Runs every comparison scheduler through the deterministic chaos harness
//! ([`run_online_chaos`]) on an Azure-like trace at increasing failure
//! rates, reporting the AWCT inflation relative to the failure-free
//! baseline plus failure/kill/re-release counts. Two pinned guarantees:
//!
//! * the `rate = 0` column is produced through the chaos driver with an
//!   empty fault plan and is asserted **bit-identical** to the scheduler's
//!   own failure-free run (schedule equality and AWCT bit equality), and
//! * every run passes the [`FaultLog::verify`] no-run-across-downtime
//!   invariant.
//!
//! `cargo run --release -p mris-bench --bin chaos [--machines 8]
//!  [--jobs 2000] [--seed 11] [--mttr-frac 0.05] [--smoke]
//!  [--out BENCH_chaos.json]`
//!
//! `--smoke` shrinks the trace so CI can validate the pipeline and the
//! JSON schema in seconds; full runs are for tracked numbers.

use mris_bench::Args;
use mris_core::registry::{comparison_algorithms, online_policy_by_name};
use mris_schedulers::Scheduler;
use mris_sim::{run_online_chaos, suggested_horizon, FaultPlan, PoissonFaultConfig};
use mris_trace::{AzureTrace, AzureTraceConfig};
use mris_types::{Instance, RestartSemantics};

/// One scheduler at one failure rate.
struct RateReport {
    rate: f64,
    awct: f64,
    awct_inflation: f64,
    failures: usize,
    kills: usize,
    re_releases: u64,
}

impl RateReport {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"rate\": {}, \"awct\": {:.6}, \"awct_inflation\": {:.6}, ",
                "\"failures\": {}, \"kills\": {}, \"re_releases\": {}}}"
            ),
            self.rate, self.awct, self.awct_inflation, self.failures, self.kills, self.re_releases,
        )
    }
}

struct SchedulerReport {
    name: String,
    baseline_awct: f64,
    results: Vec<RateReport>,
}

impl SchedulerReport {
    fn to_json(&self) -> String {
        let results: Vec<String> = self.results.iter().map(|r| r.to_json()).collect();
        format!(
            "{{\"name\": \"{}\", \"baseline_awct\": {:.6}, \"results\": [{}]}}",
            self.name,
            self.baseline_awct,
            results.join(", ")
        )
    }
}

/// The fault configuration shared by every scheduler in one bench run.
struct ChaosSetup {
    rates: Vec<f64>,
    mttr_frac: f64,
    seed: u64,
    restart: RestartSemantics,
}

fn run_scheduler(
    algo: &dyn Scheduler,
    lookup_name: &str,
    instance: &Instance,
    machines: usize,
    setup: &ChaosSetup,
) -> SchedulerReport {
    let ChaosSetup {
        ref rates,
        mttr_frac,
        seed,
        restart,
    } = *setup;
    let baseline = algo.schedule(instance, machines);
    let baseline_awct = baseline.awct(instance);
    let horizon = suggested_horizon(instance, machines);
    let results = rates
        .iter()
        .map(|&rate| {
            let plan = if rate == 0.0 {
                FaultPlan::none()
            } else {
                FaultPlan::poisson(&PoissonFaultConfig {
                    seed,
                    num_machines: machines,
                    horizon,
                    mtbf: horizon / rate,
                    mttr: mttr_frac * horizon,
                })
            };
            let mut policy = online_policy_by_name(lookup_name, instance, machines)
                .expect("comparison names resolve to online policies");
            let outcome = run_online_chaos(instance, machines, policy.as_mut(), &plan, restart)
                .unwrap_or_else(|e| panic!("{}: chaos run failed: {e}", algo.name()));
            outcome
                .log
                .verify()
                .unwrap_or_else(|v| panic!("{}: invariant violation: {v}", algo.name()));
            let awct = outcome.schedule.awct(instance);
            if rate == 0.0 {
                // The zero-failure column must match the failure-free run
                // exactly — bitwise, not approximately.
                assert_eq!(
                    outcome.schedule,
                    baseline,
                    "{}: rate-0 chaos run diverged from failure-free baseline",
                    algo.name()
                );
                assert_eq!(
                    awct.to_bits(),
                    baseline_awct.to_bits(),
                    "{}: rate-0 AWCT bits diverged",
                    algo.name()
                );
            }
            RateReport {
                rate,
                awct,
                awct_inflation: awct / baseline_awct,
                failures: outcome.log.failures.len(),
                kills: outcome.log.total_kills(),
                re_releases: outcome.log.total_re_releases(),
            }
        })
        .collect();
    SchedulerReport {
        name: algo.name(),
        baseline_awct,
        results,
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let machines = args.get("machines", if smoke { 4 } else { 8 });
    let jobs = args.get("jobs", if smoke { 150 } else { 2_000 });
    let seed = args.get("seed", 11u64);
    let mttr_frac = args.get("mttr-frac", 0.05);
    let out: String = args.get("out", "BENCH_chaos.json".to_string());
    // Expected failures per machine over the horizon: none, occasional,
    // frequent.
    let setup = ChaosSetup {
        rates: vec![0.0, 0.5, 2.0],
        mttr_frac,
        seed,
        restart: RestartSemantics::FullRestart,
    };

    eprintln!(
        "chaos bench: mode = {}, M = {machines}, N = {jobs}, seed = {seed}, \
         rates = {:?}, restart = {}",
        if smoke { "smoke" } else { "full" },
        setup.rates,
        setup.restart.label()
    );

    let trace = AzureTrace::generate(&AzureTraceConfig {
        num_jobs: jobs,
        seed,
        ..AzureTraceConfig::default()
    });
    let instance = trace.sample_instance(1, 0);
    // `comparison_algorithms()` order matches these registry names.
    let lookup_names = ["mris", "pq-wsjf", "pq-wsvf", "tetris", "bf-exec", "ca-pq"];
    let algos = comparison_algorithms();
    assert_eq!(algos.len(), lookup_names.len());

    let mut reports = Vec::with_capacity(algos.len());
    for (algo, lookup) in algos.iter().zip(lookup_names) {
        eprintln!("  {} ...", algo.name());
        let report = run_scheduler(algo.as_ref(), lookup, &instance, machines, &setup);
        for r in &report.results {
            eprintln!(
                "    rate {:>4}: AWCT {:.1} ({:.3}x), {} failures, {} kills, {} re-releases",
                r.rate, r.awct, r.awct_inflation, r.failures, r.kills, r.re_releases
            );
        }
        reports.push(report);
    }

    let schedulers: Vec<String> = reports
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    let rates_json: Vec<String> = setup.rates.iter().map(|r| r.to_string()).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"chaos\",\n",
            "  \"version\": 1,\n",
            "  \"mode\": \"{}\",\n",
            "  \"machines\": {},\n",
            "  \"jobs\": {},\n",
            "  \"seed\": {},\n",
            "  \"mttr_frac\": {},\n",
            "  \"restart\": \"{}\",\n",
            "  \"rates\": [{}],\n",
            "  \"schedulers\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        machines,
        jobs,
        seed,
        mttr_frac,
        setup.restart.label(),
        rates_json.join(", "),
        schedulers.join(",\n")
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("  wrote {out}");
    print!("{json}");
}
