//! Workload-structure benchmark (`BENCH_workloads.json`).
//!
//! Runs every registered scheduler over the cross product of four job
//! structures — independent, chains, fork-join stages, random DAGs — and
//! two cluster shapes — uniform and related-speed machines — reporting
//! spec-aware AWCT and makespan per cell. Cells a scheduler's capability
//! flags reject (today: CA-PQ on precedence workloads) are reported as
//! unsupported rather than silently skipped.
//!
//! Pinned guarantees, asserted on every run:
//!
//! * the independent × uniform column is **bit-identical** to the legacy
//!   [`Scheduler::try_schedule`] path (the API-redesign invariant);
//! * every schedule passes spec-aware validation, and every precedence
//!   edge holds under the target cluster's effective times;
//! * DAG cells actually exercised the gate: the `mris_prec_*` counters
//!   (captured via an installed obs subscriber) are nonzero.
//!
//! `cargo run --release -p mris-bench --bin workloads [--machines 6]
//!  [--jobs 600] [--seed 17] [--smoke] [--out BENCH_workloads.json]`
//!
//! `--smoke` shrinks the trace so CI can validate the pipeline and the
//! JSON schema in seconds; full runs are for tracked numbers.

use std::sync::Arc;

use mris_bench::Args;
use mris_core::registry::algorithm_for_workload;
use mris_obs::Obs;
use mris_rng::Rng;
use mris_schedulers::Scheduler;
use mris_trace::{AzureTrace, AzureTraceConfig};
use mris_types::{ClusterSpec, Instance, InstanceBuilder, JobId, RegistryError, Schedule};

/// The four job structures of the grid.
const FAMILIES: [&str; 4] = ["independent", "chain", "fork-join", "random-dag"];
/// The two cluster shapes of the grid.
const CLUSTERS: [&str; 2] = ["uniform", "related"];
/// Related-machine speed pattern, cycled over the cluster: a fast tier, a
/// baseline tier, and a slow tier.
const SPEEDS: [f64; 3] = [2.0, 1.0, 0.5];

/// One scheduler in one grid cell.
struct CellResult {
    name: String,
    supported: bool,
    awct: f64,
    makespan: f64,
}

impl CellResult {
    fn to_json(&self) -> String {
        if self.supported {
            format!(
                "{{\"name\": \"{}\", \"supported\": true, \"awct\": {:.6}, \"makespan\": {:.6}}}",
                self.name, self.awct, self.makespan
            )
        } else {
            format!(
                "{{\"name\": \"{}\", \"supported\": false, \"awct\": null, \"makespan\": null}}",
                self.name
            )
        }
    }
}

/// One (family, cluster) cell of the grid.
struct Cell {
    family: &'static str,
    cluster: &'static str,
    edges: usize,
    results: Vec<CellResult>,
}

impl Cell {
    fn to_json(&self) -> String {
        let results: Vec<String> = self.results.iter().map(|r| r.to_json()).collect();
        format!(
            "{{\"family\": \"{}\", \"cluster\": \"{}\", \"edges\": {}, \"results\": [{}]}}",
            self.family,
            self.cluster,
            self.edges,
            results.join(", ")
        )
    }
}

/// Rebuilds `base` with the precedence structure of `family`. Edges are
/// forward-only (pred id < succ id), so every family is acyclic by
/// construction.
fn with_family(base: &Instance, family: &str, seed: u64) -> Instance {
    let n = base.len();
    let mut b = InstanceBuilder::new(base.num_resources());
    for j in base.jobs() {
        b.push(j.clone());
    }
    match family {
        "independent" => {}
        // Disjoint chains of 4 consecutive ids: 0->1->2->3, 4->5->...
        "chain" => {
            for i in 0..n.saturating_sub(1) {
                if i % 4 != 3 {
                    b.edge(JobId(i as u32), JobId(i as u32 + 1));
                }
            }
        }
        // Stages of 6 consecutive ids: the first forks to four middles,
        // which all join into the last.
        "fork-join" => {
            for stage in 0..n / 6 {
                let first = stage * 6;
                let last = first + 5;
                for mid in (first + 1)..last {
                    b.edge(JobId(first as u32), JobId(mid as u32));
                    b.edge(JobId(mid as u32), JobId(last as u32));
                }
            }
        }
        // Each job draws up to two predecessors among earlier ids.
        "random-dag" => {
            let mut rng = Rng::new(seed).substream("workloads-dag");
            for succ in 1..n {
                for _ in 0..2 {
                    if rng.gen_range(0.0..1.0) < 0.5 {
                        let pred = rng.gen_range(0..succ);
                        b.edge(JobId(pred as u32), JobId(succ as u32));
                    }
                }
            }
        }
        other => panic!("unknown family {other}"),
    }
    b.build().unwrap_or_else(|e| panic!("{family}: {e}"))
}

/// Asserts every precedence edge holds under `spec`'s effective times.
fn assert_edges_respected(name: &str, instance: &Instance, spec: &ClusterSpec, sched: &Schedule) {
    for &(pred, succ) in instance.edges() {
        let p = sched.get(pred).expect("predecessor scheduled");
        let s = sched.get(succ).expect("successor scheduled");
        let end = p.start + spec.effective_time(p.machine, instance.job(pred).proc_time);
        assert!(
            s.start >= end,
            "{name}: {succ} starts at {} before {pred} completes at {end}",
            s.start
        );
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let machines = args.get("machines", if smoke { 4 } else { 6 });
    let jobs = args.get("jobs", if smoke { 96 } else { 600 });
    let seed = args.get("seed", 17u64);
    let out: String = args.get("out", "BENCH_workloads.json".to_string());

    eprintln!(
        "workloads bench: mode = {}, M = {machines}, N = {jobs}, seed = {seed}",
        if smoke { "smoke" } else { "full" }
    );

    let trace = AzureTrace::generate(&AzureTraceConfig {
        num_jobs: jobs,
        seed,
        ..AzureTraceConfig::default()
    });
    let base = trace.sample_instance(2, 0);
    let speeds: Vec<f64> = (0..machines).map(|m| SPEEDS[m % SPEEDS.len()]).collect();
    // The comparison set of the paper's figures, by registry name.
    let names = ["mris", "pq-wsjf", "pq-wsvf", "tetris", "bf-exec", "ca-pq"];

    // Precedence counters captured across every DAG cell; CI asserts the
    // gate actually fired.
    let obs = Arc::new(Obs::new());
    let _guard = mris_obs::install_guard(obs.clone());

    let mut grid: Vec<Cell> = Vec::new();
    for family in FAMILIES {
        let instance = with_family(&base, family, seed);
        for cluster_kind in CLUSTERS {
            let spec = match cluster_kind {
                "uniform" => ClusterSpec::uniform(machines),
                _ => ClusterSpec::related(machines, &speeds),
            };
            eprintln!("  {family} x {cluster_kind} ({} edges) ...", instance.edges().len());
            let mut results = Vec::new();
            for &name in &names {
                let algo = match algorithm_for_workload(name, &instance, &spec) {
                    Ok(a) => a,
                    Err(RegistryError::Unsupported { .. }) => {
                        results.push(CellResult {
                            name: name.to_string(),
                            supported: false,
                            awct: 0.0,
                            makespan: 0.0,
                        });
                        continue;
                    }
                    Err(e) => panic!("{name}: {e}"),
                };
                let sched = algo
                    .try_schedule_on(&instance, &spec)
                    .unwrap_or_else(|e| panic!("{name} on {family} x {cluster_kind}: {e}"));
                sched
                    .validate_on(&instance, &spec)
                    .unwrap_or_else(|e| panic!("{name} on {family} x {cluster_kind}: {e}"));
                assert_edges_respected(name, &instance, &spec, &sched);
                if family == "independent" && cluster_kind == "uniform" {
                    // The API-redesign invariant: the spec-aware path on a
                    // uniform cluster is the legacy path, bit for bit.
                    let legacy = algo
                        .try_schedule(&instance, machines)
                        .expect("legacy path schedules the edge-free instance");
                    assert_eq!(
                        sched, legacy,
                        "{name}: uniform spec-aware schedule diverged from try_schedule"
                    );
                }
                let awct = sched.awct_on(&instance, &spec);
                let makespan: f64 = instance
                    .jobs()
                    .iter()
                    .map(|j| {
                        let a = sched.get(j.id).expect("scheduled");
                        a.start + spec.effective_time(a.machine, j.proc_time)
                    })
                    .fold(0.0, f64::max);
                results.push(CellResult {
                    name: name.to_string(),
                    supported: true,
                    awct,
                    makespan,
                });
            }
            grid.push(Cell {
                family,
                cluster: cluster_kind,
                edges: instance.edges().len(),
                results,
            });
        }
    }

    let reg = obs.registry();
    let gated = reg.counter_value("mris_prec_gated_total", None).unwrap_or(0);
    let ready = reg.counter_value("mris_prec_ready_total", None).unwrap_or(0);
    let revoked = reg
        .counter_value("mris_prec_revoked_total", None)
        .unwrap_or(0);
    assert!(
        ready > 0,
        "DAG cells ran but no precedence gate ever opened — gating is not wired"
    );
    eprintln!("  precedence counters: gated = {gated}, ready = {ready}, revoked = {revoked}");

    let families_json: Vec<String> = FAMILIES.iter().map(|f| format!("\"{f}\"")).collect();
    let clusters_json: Vec<String> = CLUSTERS.iter().map(|c| format!("\"{c}\"")).collect();
    let speeds_json: Vec<String> = speeds.iter().map(|s| s.to_string()).collect();
    let grid_json: Vec<String> = grid.iter().map(|c| format!("    {}", c.to_json())).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"workloads\",\n",
            "  \"version\": 1,\n",
            "  \"mode\": \"{}\",\n",
            "  \"machines\": {},\n",
            "  \"jobs\": {},\n",
            "  \"seed\": {},\n",
            "  \"families\": [{}],\n",
            "  \"clusters\": [{}],\n",
            "  \"speeds\": [{}],\n",
            "  \"precedence_counters\": {{\"mris_prec_gated_total\": {}, ",
            "\"mris_prec_ready_total\": {}, \"mris_prec_revoked_total\": {}}},\n",
            "  \"grid\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        machines,
        jobs,
        seed,
        families_json.join(", "),
        clusters_json.join(", "),
        speeds_json.join(", "),
        gated,
        ready,
        revoked,
        grid_json.join(",\n")
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("  wrote {out}");
    print!("{json}");
}
