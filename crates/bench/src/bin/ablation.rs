//! Ablation study of MRIS's design choices (beyond the paper's figures):
//!
//! * **backfilling** on/off (Section 5.3 motivates it; the Theorem 6.8
//!   analysis assumes the off-worst-case) — how much does it actually buy?
//! * **interval base `alpha`** — 2 is the smallest base satisfying
//!   `gamma_{k+1} - gamma_k >= gamma_k`; larger bases commit less often but
//!   with bigger batches.
//! * **CADP `epsilon`** — trades knapsack precision (and the `8R(1+eps)`
//!   ratio) against `O(n^2/eps)` runtime.
//! * **queue heuristics including the DRF-inspired extensions**
//!   (SDDF/WSDDF) absent from the paper.
//!
//! `cargo run --release -p mris-bench --bin ablation [--n jobs]
//!  [--machines m] [--samples k] [--csv]`

use mris_bench::{awct_summaries, default_trace, Args, Scale};
use mris_core::{Mris, MrisConfig};
use mris_metrics::Table;
use mris_schedulers::{Scheduler, SortHeuristic};

fn run_variants(
    title: &str,
    variants: Vec<(String, MrisConfig)>,
    instances: &[mris_types::Instance],
    machines: usize,
    scale: &Scale,
) {
    let algorithms: Vec<Box<dyn Scheduler>> = variants
        .iter()
        .map(|(_, cfg)| Box::new(Mris::with_config(*cfg)) as Box<dyn Scheduler>)
        .collect();
    let rows = awct_summaries(&algorithms, instances, machines);
    let mut table = Table::new(vec!["variant", "AWCT (mean ± 95% CI)", "vs default"]);
    let baseline = rows
        .iter()
        .zip(&variants)
        .find(|(_, (label, _))| label == "default")
        .map(|(r, _)| r.1.mean)
        .unwrap_or(rows[0].1.mean);
    for ((label, _), (_, summary)) in variants.iter().zip(&rows) {
        table.push_row(vec![
            label.clone(),
            format!("{:.1} ± {:.1}", summary.mean, summary.ci95_half_width()),
            format!("{:+.1}%", (summary.mean / baseline - 1.0) * 100.0),
        ]);
    }
    println!("\n### {title}\n");
    scale.print_table(&table);
}

fn main() {
    let args = Args::parse();
    let mut scale = Scale::from_args(&args);
    // Ablations are MRIS-only and run many variants; default to a mid-size
    // point unless overridden.
    if !args.has("paper") && scale.n_fixed == 16_000 && !args.has("n") {
        scale.n_fixed = args.get("n", 8_000);
    }
    eprintln!(
        "ablation: N = {}, M = {}, {} samples",
        scale.n_fixed, scale.machines, scale.samples
    );
    let pool = default_trace(&scale);
    let instances = pool.instances_for(scale.n_fixed, scale.samples);
    let default = MrisConfig::default();

    run_variants(
        "Backfilling (Section 5.3)",
        vec![
            ("default".into(), default),
            (
                "no-backfill (analysis worst case)".into(),
                MrisConfig {
                    backfill: false,
                    ..default
                },
            ),
        ],
        &instances,
        scale.machines,
        &scale,
    );

    run_variants(
        "Interval base alpha (Theorem 6.8 requires alpha >= 2)",
        [2.0, 3.0, 4.0, 8.0]
            .iter()
            .map(|&alpha| {
                let label = if alpha == 2.0 {
                    "default".to_string()
                } else {
                    format!("alpha = {alpha}")
                };
                (label, MrisConfig { alpha, ..default })
            })
            .collect(),
        &instances,
        scale.machines,
        &scale,
    );

    run_variants(
        "CADP epsilon (ratio 8R(1+eps), runtime O(n^2/eps))",
        [0.1, 0.25, 0.5, 0.75, 0.9]
            .iter()
            .map(|&epsilon| {
                let label = if epsilon == 0.5 {
                    "default".to_string()
                } else {
                    format!("eps = {epsilon}")
                };
                (label, MrisConfig { epsilon, ..default })
            })
            .collect(),
        &instances,
        scale.machines,
        &scale,
    );

    run_variants(
        "Queue heuristic (incl. DRF-inspired SDDF/WSDDF extensions)",
        SortHeuristic::ALL_EXTENDED
            .iter()
            .map(|&heuristic| {
                let label = if heuristic == SortHeuristic::Wsjf {
                    "default".to_string()
                } else {
                    heuristic.to_string()
                };
                (
                    label,
                    MrisConfig {
                        heuristic,
                        ..default
                    },
                )
            })
            .collect(),
        &instances,
        scale.machines,
        &scale,
    );
}
