//! Committed-timeline hot-path benchmark (`BENCH_timeline.json`).
//!
//! Replays three workloads against the indexed [`MachineTimeline`] /
//! [`ClusterTimelines`] and a faithful copy of the pre-index brute-force
//! structure (sorted breakpoints, per-breakpoint `Vec::insert`, linear
//! scans, full machine sweep), reporting throughput, speedup, segment
//! counts, and per-query latency percentiles:
//!
//! * `trace_replay` — earliest-fit placement of an Azure-like trace at
//!   release order on a multi-machine cluster (the `place_batch` hot path).
//! * `synthetic_churn` — a single machine under a mixed stream of commits,
//!   feasibility probes, earliest-fit queries, and periodic compaction.
//! * `parallel_scan` — `earliest_fit` on a wide, heavily fragmented
//!   cluster: the current policy (sequential cutoff-pruned scan below
//!   `PARALLEL_SCAN_THRESHOLD`) versus a bench-local replica of the
//!   pre-fix per-query scoped-thread scan.
//!
//! `cargo run --release -p mris-bench --bin timeline [--machines 64]
//!  [--jobs 10000] [--window-days 0.25] [--seed 7] [--smoke]
//!  [--out results/BENCH_timeline.json]`
//!
//! `--smoke` shrinks every workload to a few hundred operations so CI can
//! validate the pipeline and the JSON schema in seconds; full runs are for
//! tracked numbers.

use std::time::Instant;

use mris_bench::scan::{fragmented_cluster, fragmented_horizon, old_scoped_scan, scan_script};
use mris_bench::Args;
use mris_metrics::Percentiles;
use mris_rng::Rng;
use mris_sim::{ClusterTimelines, MachineTimeline};
use mris_trace::{AzureTrace, AzureTraceConfig};
use mris_types::{amount_from_fraction, Amount, Job, CAPACITY};

/// The pre-index `MachineTimeline`: identical invariants and answers, no
/// skip index, no hint cache, no cutoff pruning — the "before" side of
/// every speedup this benchmark reports.
struct BruteTimeline {
    num_resources: usize,
    times: Vec<f64>,
    usage: Vec<Amount>,
}

impl BruteTimeline {
    fn new(num_resources: usize) -> Self {
        BruteTimeline {
            num_resources,
            times: vec![0.0],
            usage: vec![0; num_resources],
        }
    }

    fn segment_index(&self, t: f64) -> usize {
        self.times.partition_point(|&bp| bp <= t) - 1
    }

    fn segment_usage(&self, i: usize) -> &[Amount] {
        &self.usage[i * self.num_resources..(i + 1) * self.num_resources]
    }

    fn ensure_breakpoint(&mut self, t: f64) -> usize {
        let i = self.segment_index(t);
        if self.times[i] == t {
            return i;
        }
        self.times.insert(i + 1, t);
        let r = self.num_resources;
        let seg: Vec<Amount> = self.segment_usage(i).to_vec();
        let at = (i + 1) * r;
        self.usage.splice(at..at, seg);
        i + 1
    }

    fn is_feasible(&self, start: f64, dur: f64, demands: &[Amount]) -> bool {
        let end = start + dur;
        let mut i = self.segment_index(start);
        while i < self.times.len() && self.times[i] < end {
            let seg = self.segment_usage(i);
            if seg.iter().zip(demands).any(|(&u, &d)| u + d > CAPACITY) {
                return false;
            }
            i += 1;
        }
        true
    }

    fn earliest_fit(&self, from: f64, dur: f64, demands: &[Amount]) -> f64 {
        let mut cand = from.max(0.0);
        'outer: loop {
            let end = cand + dur;
            let mut i = self.segment_index(cand);
            while i < self.times.len() && self.times[i] < end {
                let seg = self.segment_usage(i);
                if seg.iter().zip(demands).any(|(&u, &d)| u + d > CAPACITY) {
                    cand = self.times[i + 1];
                    continue 'outer;
                }
                i += 1;
            }
            return cand;
        }
    }

    fn commit(&mut self, start: f64, dur: f64, demands: &[Amount]) {
        let i0 = self.ensure_breakpoint(start);
        let i1 = self.ensure_breakpoint(start + dur);
        let r = self.num_resources;
        for i in i0..i1 {
            for (u, &d) in self.usage[i * r..(i + 1) * r].iter_mut().zip(demands) {
                *u += d;
            }
        }
    }

    fn compact_before(&mut self, horizon: f64) {
        let keep_from = self.segment_index(horizon.max(0.0));
        if keep_from == 0 {
            return;
        }
        self.times.drain(..keep_from);
        self.usage.drain(..keep_from * self.num_resources);
        self.times[0] = 0.0;
    }
}

/// The original cluster scan: every machine, no cutoff, strict `<`
/// tie-break toward the lower index.
fn brute_cluster_fit(
    machines: &[BruteTimeline],
    from: f64,
    dur: f64,
    demands: &[Amount],
) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (m, tl) in machines.iter().enumerate() {
        let s = tl.earliest_fit(from, dur, demands);
        if s < best.1 {
            best = (m, s);
        }
    }
    best
}

/// One workload's measurements, serialized as a JSON object.
struct WorkloadReport {
    name: &'static str,
    ops: usize,
    elapsed_s: f64,
    baseline_elapsed_s: f64,
    segments: usize,
    query_ns: Vec<u64>,
}

impl WorkloadReport {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed_s.max(1e-12)
    }

    fn baseline_ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.baseline_elapsed_s.max(1e-12)
    }

    fn speedup(&self) -> f64 {
        self.baseline_elapsed_s / self.elapsed_s.max(1e-12)
    }

    fn to_json(&self) -> String {
        // Shared nearest-rank percentiles from mris-metrics, rather than
        // this bin rolling its own quantile math.
        let ns: Vec<f64> = self.query_ns.iter().map(|&n| n as f64).collect();
        let p = Percentiles::of(&ns).unwrap_or(Percentiles {
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
        });
        format!(
            concat!(
                "{{\"name\": \"{}\", \"ops\": {}, \"ops_per_sec\": {:.1}, ",
                "\"baseline_ops_per_sec\": {:.1}, \"speedup\": {:.2}, ",
                "\"segments\": {}, \"query_ns_p50\": {}, \"query_ns_p99\": {}}}"
            ),
            self.name,
            self.ops,
            self.ops_per_sec(),
            self.baseline_ops_per_sec(),
            self.speedup(),
            self.segments,
            p.p50.round() as u64,
            p.p99.round() as u64,
        )
    }
}

/// Earliest-fit placement of a full trace at release order: the exact loop
/// `place_batch` drives during simulation, measured on the indexed cluster
/// and the brute baseline over identical job sequences.
fn trace_replay(jobs: &[Job], machines: usize, resources: usize) -> WorkloadReport {
    let mut brute: Vec<BruteTimeline> = (0..machines)
        .map(|_| BruteTimeline::new(resources))
        .collect();
    let t0 = Instant::now();
    for job in jobs {
        let (m, s) = brute_cluster_fit(&brute, job.release, job.proc_time, &job.demands);
        brute[m].commit(s, job.proc_time, &job.demands);
    }
    let baseline_elapsed_s = t0.elapsed().as_secs_f64();

    let mut cluster = ClusterTimelines::new(machines, resources);
    let mut query_ns = Vec::with_capacity(jobs.len());
    let t0 = Instant::now();
    for job in jobs {
        let tq = Instant::now();
        let (m, s) = cluster.earliest_fit(job.release, job.proc_time, &job.demands);
        query_ns.push(tq.elapsed().as_nanos() as u64);
        cluster.commit(m, s, job.proc_time, &job.demands);
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    // The two sides must have produced identical schedules.
    let brute_segments: usize = brute.iter().map(|tl| tl.times.len()).sum();
    assert_eq!(
        cluster.total_segments(),
        brute_segments,
        "indexed and brute replays diverged"
    );

    WorkloadReport {
        name: "trace_replay",
        ops: jobs.len(),
        elapsed_s,
        baseline_elapsed_s,
        segments: cluster.total_segments(),
        query_ns,
    }
}

/// The operation mix for the churn workload, regenerated per run from the
/// seed so both sides replay the identical script.
enum ChurnOp {
    Place {
        dur: f64,
        demands: Vec<Amount>,
    },
    Feasible {
        at: f64,
        dur: f64,
        demands: Vec<Amount>,
    },
    Query {
        at: f64,
        dur: f64,
        demands: Vec<Amount>,
    },
    Compact,
}

fn churn_script(ops: usize, seed: u64) -> Vec<ChurnOp> {
    let mut rng = Rng::new(seed);
    (0..ops)
        .map(|_| {
            let demands: Vec<Amount> = (0..2)
                .map(|_| amount_from_fraction(rng.gen_range(0.05..0.45)))
                .collect();
            match rng.gen_range(0..10usize) {
                0..=5 => ChurnOp::Place {
                    dur: rng.gen_range(0.1..8.0),
                    demands,
                },
                6 => ChurnOp::Feasible {
                    at: rng.gen_range(0.0..400.0),
                    dur: rng.gen_range(0.1..10.0),
                    demands,
                },
                7..=8 => ChurnOp::Query {
                    at: rng.gen_range(0.0..400.0),
                    dur: rng.gen_range(0.1..10.0),
                    demands,
                },
                _ => ChurnOp::Compact,
            }
        })
        .collect()
}

/// A single machine under mixed commit/query/compaction churn. Placements
/// go through `earliest_fit` first (the simulator's contract: commits are
/// always feasible), compaction tracks a sliding watermark, and queries are
/// clamped to it.
fn synthetic_churn(ops: usize, seed: u64) -> WorkloadReport {
    let script = churn_script(ops, seed);
    let resources = 2;

    let mut brute = BruteTimeline::new(resources);
    let mut clock = 0.0f64;
    let mut watermark = 0.0f64;
    let t0 = Instant::now();
    for op in &script {
        match op {
            ChurnOp::Place { dur, demands } => {
                clock += 0.35;
                let s = brute.earliest_fit(clock.max(watermark), *dur, demands);
                brute.commit(s, *dur, demands);
            }
            ChurnOp::Feasible { at, dur, demands } => {
                std::hint::black_box(brute.is_feasible(at.max(watermark), *dur, demands));
            }
            ChurnOp::Query { at, dur, demands } => {
                std::hint::black_box(brute.earliest_fit(at.max(watermark), *dur, demands));
            }
            ChurnOp::Compact => {
                watermark = watermark.max(clock - 20.0);
                brute.compact_before(clock - 20.0);
            }
        }
    }
    let baseline_elapsed_s = t0.elapsed().as_secs_f64();

    let mut indexed = MachineTimeline::new(resources);
    let mut clock = 0.0f64;
    let mut query_ns = Vec::new();
    let t0 = Instant::now();
    for op in &script {
        match op {
            ChurnOp::Place { dur, demands } => {
                clock += 0.35;
                let from = clock.max(indexed.compaction_watermark());
                let s = indexed.earliest_fit(from, *dur, demands);
                indexed.commit(s, *dur, demands);
            }
            ChurnOp::Feasible { at, dur, demands } => {
                let at = at.max(indexed.compaction_watermark());
                std::hint::black_box(indexed.is_feasible(at, *dur, demands));
            }
            ChurnOp::Query { at, dur, demands } => {
                let at = at.max(indexed.compaction_watermark());
                let tq = Instant::now();
                std::hint::black_box(indexed.earliest_fit(at, *dur, demands));
                query_ns.push(tq.elapsed().as_nanos() as u64);
            }
            ChurnOp::Compact => indexed.compact_before(clock - 20.0),
        }
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    WorkloadReport {
        name: "synthetic_churn",
        ops,
        elapsed_s,
        baseline_elapsed_s,
        segments: indexed.num_segments(),
        query_ns,
    }
}

/// `earliest_fit` over a wide, heavily fragmented cluster: the default
/// policy (sequential cutoff-pruned scan — at this width no per-query
/// threads are spawned) against [`old_scoped_scan`], the replica of the
/// pre-fix per-query scoped-thread behavior. Both sides answer the
/// identical query script and must agree exactly. (The `scale` bin runs
/// the same recipe at 1k–10k machines, where the shard worker pool takes
/// over.)
fn parallel_scan(machines: usize, queries: usize, seed: u64) -> WorkloadReport {
    let resources = 2;
    let mut rng = Rng::new(seed);
    let depth = 200;
    let cluster = fragmented_cluster(machines, resources, depth, &mut rng);
    let horizon = fragmented_horizon(depth);
    let script = scan_script(queries, horizon, resources, &mut rng);

    // Baseline: the pre-fix policy, spawning scoped threads for every query.
    let mut baseline_answers = Vec::with_capacity(queries);
    let t0 = Instant::now();
    for (from, dur, demands) in &script {
        baseline_answers.push(old_scoped_scan(&cluster, *from, *dur, demands));
    }
    let baseline_elapsed_s = t0.elapsed().as_secs_f64();

    // Measured: the library's default policy — sequential below
    // `PARALLEL_SCAN_THRESHOLD`, so no per-query threads at this width.
    let mut answers = Vec::with_capacity(queries);
    let mut query_ns = Vec::with_capacity(queries);
    let t0 = Instant::now();
    for (from, dur, demands) in &script {
        let tq = Instant::now();
        answers.push(cluster.earliest_fit(*from, *dur, demands));
        query_ns.push(tq.elapsed().as_nanos() as u64);
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    assert_eq!(answers, baseline_answers, "scan policies diverged");

    WorkloadReport {
        name: "parallel_scan",
        ops: queries,
        elapsed_s,
        baseline_elapsed_s,
        segments: cluster.total_segments(),
        query_ns,
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let machines = args.get("machines", if smoke { 8 } else { 64 });
    let jobs = args.get("jobs", if smoke { 400 } else { 10_000 });
    let window_days = args.get("window-days", if smoke { 0.02 } else { 0.25 });
    let seed = args.get("seed", 7u64);
    let out: String = args.get("out", "results/BENCH_timeline.json".to_string());
    let churn_ops = if smoke { 4_000 } else { 50_000 };
    let scan_machines = if smoke { 32 } else { 256 };
    let scan_queries = if smoke { 200 } else { 4_000 };

    eprintln!(
        "timeline bench: mode = {}, M = {machines}, N = {jobs}, window = {window_days} days, seed = {seed}",
        if smoke { "smoke" } else { "full" }
    );

    let trace = AzureTrace::generate(&AzureTraceConfig {
        num_jobs: jobs,
        window_days,
        seed,
        ..AzureTraceConfig::default()
    });
    let instance = trace.sample_instance(1, 0);
    let resources = instance.num_resources();

    eprintln!(
        "  trace_replay: {} jobs on {machines} machines ...",
        instance.jobs().len()
    );
    let replay = trace_replay(instance.jobs(), machines, resources);
    eprintln!(
        "    {:.0} ops/s vs {:.0} ops/s baseline ({:.2}x), {} segments",
        replay.ops_per_sec(),
        replay.baseline_ops_per_sec(),
        replay.speedup(),
        replay.segments
    );

    eprintln!("  synthetic_churn: {churn_ops} mixed ops on one machine ...");
    let churn = synthetic_churn(churn_ops, seed ^ 0x5eed);
    eprintln!(
        "    {:.0} ops/s vs {:.0} ops/s baseline ({:.2}x)",
        churn.ops_per_sec(),
        churn.baseline_ops_per_sec(),
        churn.speedup()
    );

    eprintln!("  parallel_scan: {scan_queries} queries over {scan_machines} machines ...");
    let scan = parallel_scan(scan_machines, scan_queries, seed ^ 0xacc1);
    eprintln!(
        "    {:.0} ops/s vs {:.0} ops/s pre-fix scoped-thread scan ({:.2}x)",
        scan.ops_per_sec(),
        scan.baseline_ops_per_sec(),
        scan.speedup()
    );

    let workloads: Vec<String> = [&replay, &churn, &scan]
        .iter()
        .map(|w| format!("    {}", w.to_json()))
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"timeline\",\n",
            "  \"version\": 1,\n",
            "  \"mode\": \"{}\",\n",
            "  \"machines\": {},\n",
            "  \"jobs\": {},\n",
            "  \"seed\": {},\n",
            "  \"workloads\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        machines,
        jobs,
        seed,
        workloads.join(",\n")
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("  wrote {out}");
    print!("{json}");
}
