//! Figure 5: queuing-delay CDF of selected algorithms.
//!
//! Expected shape (paper): the event-driven schedulers (Tetris, BF-EXEC,
//! PQ-WSJF) start ~60% of jobs with zero delay but pay a sharp tail for the
//! rest; MRIS's CDF rises gradually (no free starts, far lighter tail);
//! CA-PQ is worst since every job waits for the last arrival.
//!
//! `cargo run --release -p mris-bench --bin fig5 [--paper] [--n jobs]
//!  [--machines m] [--csv]`

use mris_bench::{comparison_algorithms, default_trace, Args, Scale};
use mris_metrics::{Cdf, Table};

fn run_load(scale: &Scale, pool: &mris_bench::TracePool, n: usize) {
    let instances = pool.instances_for(n, scale.samples.min(3));
    let algorithms = comparison_algorithms();

    let quantiles = [0.1, 0.25, 0.5, 0.6, 0.75, 0.9, 0.95, 0.99, 1.0];
    let mut headers = vec!["algorithm".to_string(), "P[delay = 0]".to_string()];
    headers.extend(quantiles.iter().map(|q| format!("q{:.0}", q * 100.0)));
    let mut table = Table::new(headers);

    for algo in &algorithms {
        let mut delays = Vec::new();
        for instance in &instances {
            let schedule = algo.schedule(instance, scale.machines);
            delays.extend(schedule.queuing_delays(instance));
        }
        let cdf = Cdf::new(delays);
        let mut cells = vec![algo.name(), format!("{:.1}%", cdf.fraction_zero() * 100.0)];
        cells.extend(quantiles.iter().map(|&q| format!("{:.0}", cdf.quantile(q))));
        table.push_row(cells);
        eprintln!("  {}: done", algo.name());
    }

    println!(
        "\nFigure 5 — queuing delay distribution (N = {}, M = {}; delay at\n\
         each CDF quantile, normalized time units):\n",
        n, scale.machines
    );
    scale.print_table(&table);
}

fn main() {
    let scale = Scale::from_args(&Args::parse());
    eprintln!(
        "fig5: queuing delay CDF at N = {} and N = {}, M = {}",
        scale.n_fixed,
        scale.n_fixed / 8,
        scale.machines
    );
    let pool = default_trace(&scale);
    // Heavy load (the paper's headline point)...
    run_load(&scale, &pool, scale.n_fixed);
    // ...and a lighter load, where the event-driven schedulers' zero-delay
    // mass (the paper's "~60% of jobs start immediately") is visible.
    run_load(&scale, &pool, scale.n_fixed / 8);
}
