//! Figure 1: AWCT of MRIS under different PQ sorting heuristics.
//!
//! Expected shape (paper): ERF is clearly worst (ignores size and time),
//! (W)SDF intermediate (packs but ignores time), (W)SJF and (W)SVF best;
//! weighted and unweighted variants nearly coincide because the trace's
//! priority range is small.
//!
//! `cargo run --release -p mris-bench --bin fig1 [--paper] [--samples k] ...`

use mris_bench::{awct_summaries, default_trace, Args, Scale};
use mris_core::registry::algorithms_by_names;
use mris_metrics::Table;
use mris_schedulers::{Scheduler, SortHeuristic};

fn main() {
    let scale = Scale::from_args(&Args::parse());
    eprintln!(
        "fig1: N sweep {:?}, M = {}, {} samples",
        scale.n_sweep, scale.machines, scale.samples
    );
    let pool = default_trace(&scale);

    let heuristics = [
        SortHeuristic::Erf,
        SortHeuristic::Wsdf,
        SortHeuristic::Sdf,
        SortHeuristic::Wsjf,
        SortHeuristic::Sjf,
        SortHeuristic::Wsvf,
        SortHeuristic::Svf,
    ];
    let algorithms: Vec<Box<dyn Scheduler>> =
        algorithms_by_names(heuristics.iter().map(|h| format!("mris-{}", h.label())))
            .expect("every heuristic label is registered");

    let mut headers = vec!["N".to_string()];
    headers.extend(algorithms.iter().map(|a| a.name()));
    let mut table = Table::new(headers);

    for &n in &scale.n_sweep {
        let instances = pool.instances_for(n, scale.samples);
        let t0 = std::time::Instant::now();
        let rows = awct_summaries(&algorithms, &instances, scale.machines);
        let mut cells = vec![n.to_string()];
        cells.extend(
            rows.iter()
                .map(|(_, s)| format!("{:.1} ± {:.1}", s.mean, s.ci95_half_width())),
        );
        table.push_row(cells);
        eprintln!("  N = {n}: done in {:.1?}", t0.elapsed());
    }

    println!(
        "\nFigure 1 — AWCT of MRIS under different sorting heuristics (M = {}):\n",
        scale.machines
    );
    scale.print_table(&table);
}
