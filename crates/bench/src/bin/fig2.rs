//! Figure 2: choice of knapsack subroutine inside MRIS.
//!
//! Compares MRIS with CADP against MRIS-GREEDY (the Remark 1 constraint
//! greedy, which may use up to twice the volume budget per iteration).
//! Expected shape (paper): near parity (greedy ~2% better) at small N, but
//! CADP increasingly better as N grows — over 3x at the paper's largest
//! scale — because the greedy's overfilled early intervals push later
//! batches out.
//!
//! `cargo run --release -p mris-bench --bin fig2 [--paper] [--samples k] ...`

use mris_bench::{awct_summaries, default_trace, Args, Scale};
use mris_core::registry::algorithms_by_names;
use mris_metrics::Table;
use mris_schedulers::Scheduler;

fn main() {
    let scale = Scale::from_args(&Args::parse());
    eprintln!(
        "fig2: N sweep {:?}, M = {}, {} samples",
        scale.n_sweep, scale.machines, scale.samples
    );
    let pool = default_trace(&scale);
    let algorithms: Vec<Box<dyn Scheduler>> =
        algorithms_by_names(["mris", "mris-greedy", "mris-greedy-half"])
            .expect("knapsack variants are registered");

    let mut table = Table::new(vec![
        "N".to_string(),
        "MRIS (CADP)".to_string(),
        "MRIS-GREEDY (Remark 1, 2x capacity)".to_string(),
        "MRIS-GREEDY-HALF (capacity-respecting)".to_string(),
        "greedy/cadp".to_string(),
        "half/cadp".to_string(),
    ]);
    for &n in &scale.n_sweep {
        let instances = pool.instances_for(n, scale.samples);
        let rows = awct_summaries(&algorithms, &instances, scale.machines);
        table.push_row(vec![
            n.to_string(),
            format!("{:.1} ± {:.1}", rows[0].1.mean, rows[0].1.ci95_half_width()),
            format!("{:.1} ± {:.1}", rows[1].1.mean, rows[1].1.ci95_half_width()),
            format!("{:.1} ± {:.1}", rows[2].1.mean, rows[2].1.ci95_half_width()),
            format!("{:.2}", rows[1].1.mean / rows[0].1.mean),
            format!("{:.2}", rows[2].1.mean / rows[0].1.mean),
        ]);
        eprintln!("  N = {n}: done");
    }

    println!(
        "\nFigure 2 — AWCT of the two knapsack subroutines (M = {}):\n",
        scale.machines
    );
    scale.print_table(&table);
}
