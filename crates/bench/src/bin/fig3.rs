//! Figure 3: effect of job arrival rate on AWCT.
//!
//! Sweeps the number of jobs arriving over the fixed release window and
//! compares MRIS against PQ-WSJF, PQ-WSVF, Tetris, BF-EXEC, and CA-PQ.
//! Expected shape (paper): at low load MRIS is outperformed by the
//! event-driven packers; as arrivals grow the cluster saturates and MRIS
//! wins; the event-driven baselines converge toward the CA-PQ batch
//! reference.
//!
//! `cargo run --release -p mris-bench --bin fig3 [--paper] [--samples k]
//!  [--machines m] [--sweep a,b,c] [--csv]`

use mris_bench::{awct_summaries, comparison_algorithms, default_trace, Args, Scale};
use mris_metrics::Table;

fn main() {
    let scale = Scale::from_args(&Args::parse());
    eprintln!(
        "fig3: N sweep {:?}, M = {}, {} samples (base trace {} jobs)",
        scale.n_sweep, scale.machines, scale.samples, scale.base_jobs
    );
    let pool = default_trace(&scale);
    let algorithms = comparison_algorithms();

    let mut headers = vec!["N".to_string()];
    headers.extend(algorithms.iter().map(|a| a.name()));
    let mut table = Table::new(headers);

    for &n in &scale.n_sweep {
        let instances = pool.instances_for(n, scale.samples);
        let t0 = std::time::Instant::now();
        let rows = awct_summaries(&algorithms, &instances, scale.machines);
        let mut cells = vec![n.to_string()];
        cells.extend(
            rows.iter()
                .map(|(_, s)| format!("{:.1} ± {:.1}", s.mean, s.ci95_half_width())),
        );
        table.push_row(cells);
        eprintln!("  N = {n}: done in {:.1?}", t0.elapsed());
    }

    println!(
        "\nFigure 3 — AWCT vs number of jobs (M = {}):\n",
        scale.machines
    );
    scale.print_table(&table);
}
