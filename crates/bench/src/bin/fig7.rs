//! Figure 7: schedules on the synthetic "exercising patience" input.
//!
//! One machine; a full-demand blocker of 14 time units arrives at t = 0,
//! then ~2500 small randomized jobs arrive shortly after. The event-driven
//! schedulers commit to the blocker and delay every small job by 14 units;
//! MRIS schedules the small jobs first. Renders each schedule's CPU
//! utilization over time and reports the AWCT ratio (paper: nearly 3x).
//!
//! `cargo run --release -p mris-bench --bin fig7 [--small n] [--csv]`

use mris_bench::Args;
use mris_core::Mris;
use mris_metrics::{render_utilization, utilization_profile, Table};
use mris_schedulers::{BfExec, Pq, Scheduler, SortHeuristic, Tetris};
use mris_trace::{patience_instance, PatienceConfig};

fn main() {
    let args = Args::parse();
    let num_small = args.get("small", 2_500usize);
    let instance = patience_instance(&PatienceConfig {
        num_small,
        ..Default::default()
    });
    eprintln!(
        "fig7: patience scenario with {} jobs on one machine",
        instance.len()
    );

    let algorithms: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Mris::default()),
        Box::new(Pq::new(SortHeuristic::Wsjf)),
        Box::new(Tetris::default()),
        Box::new(BfExec),
    ];

    let mut results = Vec::new();
    for algo in &algorithms {
        let schedule = algo.schedule(&instance, 1);
        schedule.validate(&instance).expect("feasible schedule");
        results.push((algo.name(), schedule));
    }

    let horizon = results
        .iter()
        .map(|(_, s)| s.makespan(&instance))
        .fold(0.0_f64, f64::max)
        .ceil();

    println!("\nFigure 7 — CPU utilization over [0, {horizon}):\n");
    for (name, schedule) in &results {
        let profile = utilization_profile(&instance, schedule, 0, 0, horizon, 72);
        println!("{name:>12} |{}|", render_utilization(&profile));
    }

    let mut table = Table::new(vec!["algorithm", "AWCT", "vs MRIS", "blocker start"]);
    let mris_awct = results[0].1.awct(&instance);
    for (name, schedule) in &results {
        table.push_row(vec![
            name.clone(),
            format!("{:.3}", schedule.awct(&instance)),
            format!("{:.2}x", schedule.awct(&instance) / mris_awct),
            format!("{:.2}", schedule.get(mris_types::JobId(0)).unwrap().start),
        ]);
    }
    println!();
    print!("{}", table.to_markdown());
}
