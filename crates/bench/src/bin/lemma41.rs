//! Lemma 4.1: the Priority-Queue class is Omega(N)-competitive.
//!
//! Sweeps the adversarial family (one machine; a full-demand blocker with
//! p = N at t = 0 and N-1 tiny unit jobs at t = eps) and reports each
//! algorithm's AWCT divided by the reference schedule's AWCT (an upper bound
//! on OPT, so the column lower-bounds the competitive ratio). PQ/Tetris/
//! BF-EXEC grow linearly with N; MRIS stays bounded — and Theorem 6.8's
//! 8R(1+eps) ceiling is printed for comparison.
//!
//! `cargo run --release -p mris-bench --bin lemma41 [--sweep a,b,c] [--csv]`

use mris_bench::Args;
use mris_core::Mris;
use mris_metrics::Table;
use mris_schedulers::{BfExec, Pq, Scheduler, SortHeuristic, Tetris};
use mris_trace::{lemma41_instance, lemma41_reference_awct};

fn main() {
    let args = Args::parse();
    let sweep = args.get_list("sweep", &[8, 16, 32, 64, 128, 256, 512]);
    let num_resources = args.get("resources", 2usize);
    let release_eps = 0.1;

    let algorithms: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Pq::new(SortHeuristic::Wsjf)),
        Box::new(Tetris::default()),
        Box::new(BfExec),
        Box::new(Mris::default()),
    ];

    let mut headers = vec!["N".to_string()];
    headers.extend(algorithms.iter().map(|a| format!("{} / REF", a.name())));
    let mut table = Table::new(headers);

    for &n in &sweep {
        let instance = lemma41_instance(n, num_resources, release_eps);
        let reference = lemma41_reference_awct(n, release_eps);
        let mut cells = vec![n.to_string()];
        for algo in &algorithms {
            let schedule = algo.schedule(&instance, 1);
            schedule.validate(&instance).expect("feasible schedule");
            cells.push(format!("{:.2}", schedule.awct(&instance) / reference));
        }
        table.push_row(cells);
    }

    let mris_ceiling = Mris::default().config.competitive_ratio(num_resources);
    println!(
        "\nLemma 4.1 — AWCT ratio to the reference schedule on the adversarial\n\
         family ({} resources, small jobs released at eps = {}):\n",
        num_resources, release_eps
    );
    if args.has("csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_markdown());
    }
    println!(
        "\nPQ-class ratios grow ~ N/2 (unbounded); MRIS stays below its proven\n\
         ceiling 8R(1+eps) = {mris_ceiling:.0}."
    );
}
