//! Shared cluster-scan workload pieces for the `timeline` and `scale`
//! bench binaries: the fragmented-cluster builder, the query-script
//! generator, and a faithful replica of the *pre-fix* per-query
//! scoped-thread scan that both bins use as their "before" baseline.

use std::sync::atomic::{AtomicU64, Ordering};

use mris_rng::Rng;
use mris_sim::ClusterTimelines;
use mris_types::{amount_from_fraction, Amount};

/// Builds a wide, heavily fragmented cluster: every machine is packed
/// with `depth` staggered near-saturating commits whose inter-commit gaps
/// are mostly too short for the queries produced by [`scan_script`], so
/// scans cannot finish at the floor and must walk deep into the
/// breakpoints. Identical recipe across bench bins so their numbers are
/// comparable.
pub fn fragmented_cluster(
    machines: usize,
    resources: usize,
    depth: usize,
    rng: &mut Rng,
) -> ClusterTimelines {
    let mut cluster = ClusterTimelines::new(machines, resources);
    for m in 0..machines {
        for k in 0..depth {
            let start = (m % 7) as f64 * 0.3 + k as f64 * 2.0;
            let demands: Vec<Amount> = (0..resources)
                .map(|_| amount_from_fraction(rng.gen_range(0.55..0.9)))
                .collect();
            cluster.commit(m, start, rng.gen_range(1.2..1.95), &demands);
        }
    }
    cluster
}

/// The query horizon matching a [`fragmented_cluster`] of the given depth.
pub fn fragmented_horizon(depth: usize) -> f64 {
    depth as f64 * 2.0
}

/// Generates the earliest-fit query script replayed against every scan
/// policy: `(from, dur, demands)` triples whose durations exceed most of
/// the fragmentation gaps, so every query walks deep into the committed
/// breakpoints.
pub fn scan_script(
    queries: usize,
    horizon: f64,
    resources: usize,
    rng: &mut Rng,
) -> Vec<(f64, f64, Vec<Amount>)> {
    mixed_scan_script(queries, horizon, resources, 0.0, rng)
}

/// [`scan_script`] with a tunable fraction of *frontier* queries — probes
/// at or beyond the committed horizon that fit at the floor immediately,
/// the common case when an arrival stream places jobs at the clock
/// frontier. Deep queries stress per-segment scan work; frontier queries
/// stress fixed per-query overhead (thread spawns in the pre-fix scoped
/// scan, shard bookkeeping and the floor short-circuit in the pool).
pub fn mixed_scan_script(
    queries: usize,
    horizon: f64,
    resources: usize,
    frontier_fraction: f64,
    rng: &mut Rng,
) -> Vec<(f64, f64, Vec<Amount>)> {
    (0..queries)
        .map(|_| {
            let from = if rng.gen_range(0.0..1.0) < frontier_fraction {
                rng.gen_range(horizon..horizon * 1.1)
            } else {
                rng.gen_range(0.0..horizon * 0.25)
            };
            (
                from,
                rng.gen_range(2.0..6.0),
                (0..resources)
                    .map(|_| amount_from_fraction(rng.gen_range(0.2..0.5)))
                    .collect(),
            )
        })
        .collect()
}

/// Bench-local replica of the *pre-fix* cluster scan: per-query
/// `std::thread::scope` chunks over the machines, sharing a relaxed atomic
/// best-so-far as a pruning bound, with an in-order reduction for the
/// lower-machine-index tie-break. The library used to take this path for
/// every cluster of 128+ machines; the per-query spawn cost measured a
/// 0.93x *slowdown* at 256 machines. The shipped policy now routes wide
/// clusters through the persistent shard worker pool instead — this
/// replica is the "before" side of every scoped-scan speedup the bench
/// bins report.
pub fn old_scoped_scan(
    cluster: &ClusterTimelines,
    from: f64,
    dur: f64,
    demands: &[Amount],
) -> (usize, f64) {
    let machines = cluster.num_machines();
    let threads = 8.min(machines);
    let chunk_len = machines.div_ceil(threads);
    let shared_best = AtomicU64::new(f64::INFINITY.to_bits());
    let chunk_results: Vec<(usize, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|c| {
                let shared_best = &shared_best;
                scope.spawn(move || {
                    let mut local = (0usize, f64::INFINITY);
                    let lo = c * chunk_len;
                    let hi = (lo + chunk_len).min(machines);
                    for m in lo..hi {
                        let global = f64::from_bits(shared_best.load(Ordering::Relaxed));
                        // One ulp of slack so an equal-start answer from a
                        // lower index survives to the reduction.
                        let slack = if global.is_finite() {
                            global.next_up()
                        } else {
                            f64::INFINITY
                        };
                        let cutoff = local.1.min(slack);
                        if let Some(s) = cluster
                            .machine(m)
                            .earliest_fit_bounded(from, dur, demands, cutoff)
                        {
                            local = (m, s);
                            let mut cur = shared_best.load(Ordering::Relaxed);
                            while f64::from_bits(cur) > s {
                                match shared_best.compare_exchange_weak(
                                    cur,
                                    s.to_bits(),
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                ) {
                                    Ok(_) => break,
                                    Err(observed) => cur = observed,
                                }
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut best = (0usize, f64::INFINITY);
    for (m, s) in chunk_results {
        if s < best.1 {
            best = (m, s);
        }
    }
    best
}
