//! Figure 7 bench: the patience scenario end to end, including the
//! utilization rendering.

mod common;

use common::quick_criterion;
use criterion::{criterion_main, BenchmarkId};
use mris_bench::comparison_algorithms;
use mris_metrics::{render_utilization, utilization_profile};
use mris_trace::{patience_instance, PatienceConfig};
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let instance = patience_instance(&PatienceConfig {
        num_small: 500,
        ..Default::default()
    });
    let mut group = c.benchmark_group("fig7_patience");
    for algo in comparison_algorithms() {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &instance,
            |b, inst| b.iter(|| black_box(algo.schedule(black_box(inst), 1))),
        );
    }
    let schedule = comparison_algorithms()[0].schedule(&instance, 1);
    group.bench_function("utilization_render", |b| {
        b.iter(|| {
            let profile = utilization_profile(&instance, &schedule, 0, 0, 40.0, 72);
            black_box(render_utilization(black_box(&profile)))
        })
    });
    group.finish();
}

fn benches() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}

criterion_main!(benches);
