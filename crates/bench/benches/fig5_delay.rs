//! Figure 5 bench: schedule + queuing-delay-CDF pipeline cost.

mod common;

use common::{bench_instance, quick_criterion, BENCH_MACHINES};
use criterion::criterion_main;
use mris_core::Mris;
use mris_metrics::Cdf;
use mris_schedulers::Scheduler;
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let instance = bench_instance();
    let mut group = c.benchmark_group("fig5_delay");
    let schedule = Mris::default().schedule(&instance, BENCH_MACHINES);
    group.bench_function("delay_cdf", |b| {
        b.iter(|| {
            let cdf = Cdf::new(black_box(&schedule).queuing_delays(&instance));
            black_box((cdf.fraction_zero(), cdf.quantile(0.5), cdf.quantile(0.99)))
        })
    });
    group.bench_function("schedule_plus_cdf", |b| {
        b.iter(|| {
            let s = Mris::default().schedule(black_box(&instance), BENCH_MACHINES);
            black_box(Cdf::new(s.queuing_delays(&instance)).quantile(0.9))
        })
    });
    group.finish();
}

fn benches() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}

criterion_main!(benches);
