//! Figure 1 bench: MRIS runtime under each PQ sorting heuristic.

mod common;

use common::{bench_instance, quick_criterion, BENCH_MACHINES};
use criterion::{criterion_main, BenchmarkId};
use mris_bench::mris_with_heuristic;
use mris_schedulers::{Scheduler, SortHeuristic};
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let instance = bench_instance();
    let mut group = c.benchmark_group("fig1_sorting");
    for heuristic in SortHeuristic::ALL {
        let mris = mris_with_heuristic(heuristic);
        group.bench_with_input(
            BenchmarkId::from_parameter(heuristic),
            &instance,
            |b, inst| b.iter(|| black_box(mris.schedule(black_box(inst), BENCH_MACHINES))),
        );
    }
    group.finish();
}

fn benches() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}

criterion_main!(benches);
