//! Figure 3 bench: runtime of every compared scheduler on the Azure-like
//! workload.

mod common;

use common::{bench_instance, quick_criterion, BENCH_MACHINES};
use criterion::{criterion_main, BenchmarkId};
use mris_bench::comparison_algorithms;
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let instance = bench_instance();
    let mut group = c.benchmark_group("fig3_schedulers");
    for algo in comparison_algorithms() {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &instance,
            |b, inst| b.iter(|| black_box(algo.schedule(black_box(inst), BENCH_MACHINES))),
        );
    }
    group.finish();
}

fn benches() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}

criterion_main!(benches);
