//! Figure 6 bench: scheduler runtime as the resource dimension scales
//! (synthetic augmentation).

mod common;

use common::{bench_instance, quick_criterion, BENCH_MACHINES};
use criterion::{criterion_main, BenchmarkId};
use mris_core::Mris;
use mris_schedulers::{Scheduler, Tetris};
use mris_trace::augment_resources;
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let base = bench_instance();
    let mut group = c.benchmark_group("fig6_resources");
    for r in [4usize, 12, 20] {
        let instance = augment_resources(&base, r, 99);
        let mris = Mris::default();
        group.bench_with_input(BenchmarkId::new("mris", r), &instance, |b, inst| {
            b.iter(|| black_box(mris.schedule(black_box(inst), BENCH_MACHINES)))
        });
        let tetris = Tetris::default();
        group.bench_with_input(BenchmarkId::new("tetris", r), &instance, |b, inst| {
            b.iter(|| black_box(tetris.schedule(black_box(inst), BENCH_MACHINES)))
        });
    }
    group.finish();
}

fn benches() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}

criterion_main!(benches);
