//! Figure 2 bench: MRIS runtime with CADP vs the greedy knapsack, plus the
//! raw solver cost on a P1-sized item set.

mod common;

use common::{bench_instance, quick_criterion, BENCH_MACHINES};
use criterion::criterion_main;
use mris_bench::mris_greedy;
use mris_core::Mris;
use mris_knapsack::{Cadp, GreedyConstraint, Item, KnapsackSolver};
use mris_schedulers::Scheduler;
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let instance = bench_instance();
    let mut group = c.benchmark_group("fig2_knapsack");
    let cadp_mris = Mris::default();
    group.bench_function("mris_cadp", |b| {
        b.iter(|| black_box(cadp_mris.schedule(black_box(&instance), BENCH_MACHINES)))
    });
    let greedy_mris = mris_greedy();
    group.bench_function("mris_greedy", |b| {
        b.iter(|| black_box(greedy_mris.schedule(black_box(&instance), BENCH_MACHINES)))
    });

    // Raw P1 solves on the instance's own volumes, at a capacity forcing a
    // real (non-fast-path) solve.
    let items: Vec<Item> = instance
        .jobs()
        .iter()
        .map(|j| Item::new(j.weight, j.volume()))
        .collect();
    let capacity = items.iter().map(|i| i.size).sum::<f64>() / 4.0;
    group.bench_function("p1_cadp_solve", |b| {
        b.iter(|| black_box(Cadp::default().solve(black_box(&items), capacity)))
    });
    group.bench_function("p1_greedy_solve", |b| {
        b.iter(|| black_box(GreedyConstraint.solve(black_box(&items), capacity)))
    });
    group.finish();
}

fn benches() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}

criterion_main!(benches);
