//! Micro-benchmarks of the substrates: knapsack solvers, machine timelines,
//! and the event-driven engine.

mod common;

use common::{bench_instance, quick_criterion};
use criterion::{criterion_main, BenchmarkId};
use mris_knapsack::{
    brute_force, Cadp, ExactDp, GreedyConstraint, GreedyHalf, Item, KnapsackSolver,
};
use mris_sim::{ClusterTimelines, MachineTimeline};
use mris_types::amount_from_fraction;
use std::hint::black_box;

fn knapsack_items(n: usize) -> Vec<Item> {
    // Deterministic pseudo-random items.
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = ((state >> 33) % 1000) as f64 / 10.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = ((state >> 33) % 1000) as f64 / 100.0;
            Item::new(w, s)
        })
        .collect()
}

fn bench_knapsack(c: &mut criterion::Criterion) {
    let mut group = c.benchmark_group("knapsack");
    for n in [100usize, 500, 2000] {
        let items = knapsack_items(n);
        let capacity = items.iter().map(|i| i.size).sum::<f64>() / 4.0;
        group.bench_with_input(BenchmarkId::new("cadp", n), &items, |b, items| {
            b.iter(|| black_box(Cadp::default().solve(black_box(items), capacity)))
        });
        group.bench_with_input(
            BenchmarkId::new("greedy_constraint", n),
            &items,
            |b, items| b.iter(|| black_box(GreedyConstraint.solve(black_box(items), capacity))),
        );
        group.bench_with_input(BenchmarkId::new("greedy_half", n), &items, |b, items| {
            b.iter(|| black_box(GreedyHalf.solve(black_box(items), capacity)))
        });
    }
    let small = knapsack_items(18);
    let cap = small.iter().map(|i| i.size).sum::<f64>() / 3.0;
    group.bench_function("exact_dp_18", |b| {
        b.iter(|| black_box(ExactDp::default().solve(black_box(&small), cap)))
    });
    group.bench_function("brute_force_18", |b| {
        b.iter(|| black_box(brute_force(black_box(&small), cap)))
    });
    group.finish();
}

fn bench_timeline(c: &mut criterion::Criterion) {
    let mut group = c.benchmark_group("timeline");
    group.bench_function("commit_1000", |b| {
        b.iter(|| {
            let mut tl = MachineTimeline::new(4);
            let d = vec![amount_from_fraction(0.3); 4];
            for i in 0..1000 {
                let start = (i % 97) as f64;
                tl.commit(start, 1.5, &d);
            }
            black_box(tl.num_segments())
        })
    });
    // Earliest-fit queries against a fragmented timeline.
    let mut tl = ClusterTimelines::new(4, 4);
    let d = vec![amount_from_fraction(0.4); 4];
    for i in 0..500 {
        tl.commit(i % 4, (i % 211) as f64, 2.0, &d);
    }
    let probe = vec![amount_from_fraction(0.7); 4];
    group.bench_function("earliest_fit_fragmented", |b| {
        b.iter(|| black_box(tl.earliest_fit(black_box(0.0), 3.0, &probe)))
    });
    group.finish();
}

fn bench_engine(c: &mut criterion::Criterion) {
    use mris_schedulers::{Pq, Scheduler, SortHeuristic};
    let instance = bench_instance();
    let mut group = c.benchmark_group("engine");
    group.bench_function("pq_event_loop_1000_jobs", |b| {
        let pq = Pq::new(SortHeuristic::Wsjf);
        b.iter(|| black_box(pq.schedule(black_box(&instance), 5)))
    });
    group.bench_function("validate_schedule", |b| {
        let s = Pq::new(SortHeuristic::Wsjf).schedule(&instance, 5);
        b.iter(|| black_box(s.validate(black_box(&instance))).unwrap())
    });
    group.finish();
}

fn benches() {
    let mut c = quick_criterion();
    bench_knapsack(&mut c);
    bench_timeline(&mut c);
    bench_engine(&mut c);
    c.final_summary();
}

criterion_main!(benches);
