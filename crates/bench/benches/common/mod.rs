#![allow(dead_code)] // each bench uses a subset of these helpers

//! Shared setup for the criterion benches: small fixed workloads so that
//! `cargo bench` finishes quickly while tracking every figure's code path.

use criterion::Criterion;
use mris_bench::TracePool;
use mris_types::Instance;

/// Number of jobs per benchmark instance (small on purpose; the figure
/// binaries run the full-scale experiments).
pub const BENCH_JOBS: usize = 1_000;
/// Machines used by the scheduling benches.
pub const BENCH_MACHINES: usize = 5;

/// One downsampled Azure-like instance of [`BENCH_JOBS`] jobs.
pub fn bench_instance() -> Instance {
    let pool = TracePool::new(BENCH_JOBS * 4, 0xBE7C);
    pool.instances_for(BENCH_JOBS, 1).remove(0)
}

/// Criterion tuned for quick runs: the workloads are deterministic, so a
/// short measurement window suffices.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}
