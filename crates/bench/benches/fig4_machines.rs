//! Figure 4 bench: scheduler runtime as the machine count scales.

mod common;

use common::{bench_instance, quick_criterion};
use criterion::{criterion_main, BenchmarkId};
use mris_core::Mris;
use mris_schedulers::{Pq, Scheduler, SortHeuristic};
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let instance = bench_instance();
    let mut group = c.benchmark_group("fig4_machines");
    for machines in [2usize, 5, 10, 20] {
        let mris = Mris::default();
        group.bench_with_input(BenchmarkId::new("mris", machines), &machines, |b, &m| {
            b.iter(|| black_box(mris.schedule(black_box(&instance), m)))
        });
        let pq = Pq::new(SortHeuristic::Wsvf);
        group.bench_with_input(BenchmarkId::new("pq_wsvf", machines), &machines, |b, &m| {
            b.iter(|| black_box(pq.schedule(black_box(&instance), m)))
        });
    }
    group.finish();
}

fn benches() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}

criterion_main!(benches);
