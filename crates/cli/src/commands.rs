//! Subcommand implementations.

use std::path::PathBuf;

use mris_metrics::{awct_lower_bound, Cdf, Table};
use mris_trace::{instance_to_csv, parse_instance_csv, AzureTrace, AzureTraceConfig};
use mris_types::Instance;

use crate::schedule_io::{parse_schedule_csv, schedule_to_csv};
use mris_core::registry::{
    algorithm_by_name, algorithm_for_workload, known_algorithms, online_policy_by_name,
};
use mris_net::NetClient;
use mris_service::{
    generate_workload, poisson_rate_for_utilization, service_fingerprint, ArrivalProcess,
    DirSnapshots, DurabilityConfig, JobOutcome, JsonlSink, LoadGenConfig, NullSink, NullSnapshots,
    ObsBridge, Outage, RestoreOptions, Service, ServiceConfig, ServiceReport, SimClock,
    SnapshotStore, TenantSpec,
};
use mris_sim::{
    run_online_chaos, suggested_horizon, FaultPlan, PoissonFaultConfig, RackBurstConfig,
};
use mris_types::{ClusterSpec, JobId, RestartSemantics, Schedule};

/// A CLI failure: message for the user, non-zero exit.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError(s)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

impl From<mris_types::RegistryError> for CliError {
    fn from(e: mris_types::RegistryError) -> Self {
        CliError(e.to_string())
    }
}

impl From<mris_types::ConfigError> for CliError {
    fn from(e: mris_types::ConfigError) -> Self {
        CliError(e.to_string())
    }
}

impl From<mris_types::DurabilityError> for CliError {
    fn from(e: mris_types::DurabilityError) -> Self {
        CliError(e.to_string())
    }
}

impl From<mris_types::RestoreError> for CliError {
    fn from(e: mris_types::RestoreError) -> Self {
        CliError(e.to_string())
    }
}

fn usage() -> String {
    let mut s = String::from(
        "mris — online non-preemptive multi-resource scheduling (ICPP'24 reproduction)\n\n\
         USAGE:\n\
         \x20 mris generate --jobs N [--seed S] [--out trace.csv]\n\
         \x20 mris schedule --trace trace.csv --algo NAME --machines M [--out schedule.csv]\n\
         \x20      [--speeds a,b,c] [--obs] [--obs-events events.jsonl]\n\
         \x20      [--metrics-path metrics.prom] ('run' is an alias of 'schedule';\n\
         \x20      --speeds cycles related-machine speeds over the cluster)\n\
         \x20 mris compare --trace trace.csv --machines M [--algos a,b,c] [--speeds a,b,c]\n\
         \x20 mris validate --trace trace.csv --schedule schedule.csv --machines M\n\
         \x20 mris chaos --trace trace.csv --machines M [--algos a,b,c] [--rate X]\n\
         \x20      [--mttr-frac F] [--seed S] [--restart full|aging] [--aging-factor K]\n\
         \x20 mris serve --trace trace.csv --algo NAME --machines M [--epoch E]\n\
         \x20      [--queue-watermark Q] [--load-watermark L] [--telemetry out.jsonl]\n\
         \x20      [--metrics-path metrics.prom] [--journal wal.mrjl] [--flush-every N]\n\
         \x20      [--snapshot-dir DIR] [--snapshot-every N]\n\
         \x20      [--listen HOST:PORT [--port-file PATH]] — serve over TCP; with\n\
         \x20      [--tenants name:token:weight,...] [--fair-watermark N] admission is\n\
         \x20      multi-tenant weighted-fair; with --loadgen the workload comes from\n\
         \x20      the loadgen flags below instead of --trace\n\
         \x20 mris client submit --connect HOST:PORT --trace trace.csv [--token T]\n\
         \x20      [--fingerprint F]  (also: client query --job N | client stats |\n\
         \x20      client drain — drain prints the final report)\n\
         \x20 mris restore --trace trace.csv --algo NAME --machines M --journal wal.mrjl\n\
         \x20      [--snapshot snap.bin | --snapshot-dir DIR] [--strict]\n\
         \x20      [--outage-at T --outage-downtime D] [--epoch E] (+ the serve knobs\n\
         \x20      of the original run; the journal fingerprint is checked)\n\
         \x20 mris loadgen --jobs N --machines M [--algo NAME] [--seed S]\n\
         \x20      [--process poisson|bursts] [--utilization U] [--burst-size B]\n\
         \x20      [--fault-plan none|poisson|racks|adversarial] [--fault-rate X]\n\
         \x20      [--mttr-frac F] [--restart full|aging] [--telemetry out.jsonl]\n\
         \x20      [--connect HOST:PORT [--token T]] — replay the same generated\n\
         \x20      workload over TCP against a `serve --listen --loadgen` twin\n\n\
         ALGORITHMS:\n",
    );
    for (name, desc) in known_algorithms() {
        s.push_str(&format!("  {name:<16} {desc}\n"));
    }
    s
}

struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            let key = arg.strip_prefix("--").ok_or_else(|| {
                CliError(format!("expected a --flag, found '{arg}'\n\n{}", usage()))
            })?;
            // A flag followed by another --flag (or by nothing) is a switch
            // and records the value "true" (e.g. `--obs`).
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            pairs.push((key.to_string(), value));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether a boolean switch flag is present (and not explicitly
    /// disabled with `--flag false`).
    fn switch(&self, key: &str) -> bool {
        self.get(key).is_some_and(|v| v != "false" && v != "0")
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError(format!("missing required flag --{key}")))
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            Some(v) => v.parse().map_err(|e| CliError(format!("--{key}: {e}"))),
            None => Ok(default),
        }
    }
}

/// Installs the process-wide observability subscriber for the duration of
/// one command when `--obs`, `--obs-events`, or `--metrics-path` asks for
/// it. Returns the subscriber (kept for rendering at command end) and the
/// RAII guard holding the installation.
fn obs_from_flags(
    flags: &Flags,
) -> Result<Option<(std::sync::Arc<mris_obs::Obs>, mris_obs::InstallGuard)>, CliError> {
    let wanted = flags.switch("obs")
        || flags.get("obs-events").is_some()
        || flags.get("metrics-path").is_some();
    if !wanted {
        return Ok(None);
    }
    let obs = match flags.get("obs-events") {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| CliError(format!("cannot create {path}: {e}")))?;
            mris_obs::Obs::with_sink(Box::new(mris_obs::JsonlEventSink::new(
                std::io::BufWriter::new(file),
            )))
        }
        None => mris_obs::Obs::new(),
    };
    let obs = std::sync::Arc::new(obs);
    let guard = mris_obs::install_guard(obs.clone());
    Ok(Some((obs, guard)))
}

/// Flushes the obs subscriber and renders its metrics: written to
/// `--metrics-path` when given, appended to the command output otherwise.
fn obs_epilogue(flags: &Flags, obs: &mris_obs::Obs) -> Result<String, CliError> {
    obs.flush();
    let report = mris_obs::ObsReport::from_registry(obs.registry());
    let text = obs.registry().render_prometheus();
    mris_obs::validate_exposition(&text)
        .map_err(|e| CliError(format!("internal error: invalid metrics exposition: {e}")))?;
    match flags.get("metrics-path") {
        Some(path) => {
            std::fs::write(path, &text)?;
            Ok(format!(
                "observability: {} metric families; wrote Prometheus metrics to {path}\n",
                report.num_families()
            ))
        }
        None => Ok(format!(
            "observability ({} metric families):\n{text}",
            report.num_families()
        )),
    }
}

fn load_instance(path: &str) -> Result<Instance, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    parse_instance_csv(&text).map_err(|e| CliError(format!("{path}: {e}")))
}

/// Entry point: dispatches `args` (without the program name) and returns the
/// text to print on success.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError(usage()));
    };
    match command.as_str() {
        "generate" => generate(&Flags::parse(rest)?),
        // `run` is the daemon-era alias of the original `schedule` verb.
        "schedule" | "run" => schedule(&Flags::parse(rest)?),
        "compare" => compare(&Flags::parse(rest)?),
        "validate" => validate(&Flags::parse(rest)?),
        "chaos" => chaos(&Flags::parse(rest)?),
        "serve" => serve(&Flags::parse(rest)?),
        // `client` takes an action word before its flags.
        "client" => client(rest),
        "restore" => restore(&Flags::parse(rest)?),
        "loadgen" => loadgen(&Flags::parse(rest)?),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError(format!(
            "unknown command '{other}'\n\n{}",
            usage()
        ))),
    }
}

fn generate(flags: &Flags) -> Result<String, CliError> {
    let jobs: usize = flags.get_parsed("jobs", 10_000)?;
    let seed: u64 = flags.get_parsed("seed", 0xA207_2024)?;
    let factor: usize = flags.get_parsed("factor", 1)?;
    let offset: usize = flags.get_parsed("offset", 0)?;
    let trace = AzureTrace::generate(&AzureTraceConfig {
        num_jobs: jobs * factor,
        seed,
        ..Default::default()
    });
    let instance = trace.sample_instance(factor, offset.min(factor.saturating_sub(1)));
    let csv = instance_to_csv(&instance);
    match flags.get("out") {
        Some(path) => {
            std::fs::write(PathBuf::from(path), &csv)?;
            Ok(format!(
                "wrote {} jobs x {} resources to {path}\n",
                instance.len(),
                instance.num_resources()
            ))
        }
        None => Ok(csv),
    }
}

/// Parses `--speeds a,b,c` into a cluster spec: absent means the uniform
/// (identical-machine) cluster; present means related machines with the
/// listed speeds cycled over the fleet (DESIGN.md §16).
fn cluster_from_flags(flags: &Flags, machines: usize) -> Result<ClusterSpec, CliError> {
    let Some(raw) = flags.get("speeds") else {
        return Ok(ClusterSpec::uniform(machines));
    };
    let mut speeds = Vec::new();
    for part in raw.split(',') {
        let s: f64 = part
            .trim()
            .parse()
            .map_err(|e| CliError(format!("--speeds: {e}")))?;
        if !s.is_finite() || s <= 0.0 {
            return Err(CliError(format!("--speeds: {s} is not a positive speed")));
        }
        speeds.push(s);
    }
    if speeds.is_empty() {
        return Err(CliError("--speeds needs at least one value".into()));
    }
    Ok(ClusterSpec::related(machines, &speeds))
}

/// Latest completion under the spec's effective processing times; equals
/// `Schedule::makespan` on a uniform spec.
fn makespan_on(schedule: &Schedule, instance: &Instance, spec: &ClusterSpec) -> f64 {
    instance
        .jobs()
        .iter()
        .filter_map(|j| {
            let a = schedule.get(j.id)?;
            Some(a.start + spec.effective_time(a.machine, j.proc_time))
        })
        .fold(0.0, f64::max)
}

fn schedule(flags: &Flags) -> Result<String, CliError> {
    let instance = load_instance(flags.require("trace")?)?;
    let machines: usize = flags.get_parsed("machines", 20)?;
    let cluster = cluster_from_flags(flags, machines)?;
    let algo = algorithm_for_workload(flags.require("algo")?, &instance, &cluster)?;
    let obs = obs_from_flags(flags)?;
    let schedule = algo
        .try_schedule_on(&instance, &cluster)
        .map_err(|e| CliError(format!("{}: {e}", algo.name())))?;
    schedule
        .validate_on(&instance, &cluster)
        .map_err(|e| CliError(format!("internal error: produced invalid schedule: {e}")))?;
    let speeds_line = match flags.get("speeds") {
        Some(raw) => format!("# speeds: {raw}\n"),
        None => String::new(),
    };
    let mut report = format!(
        "# algorithm: {}\n# machines: {machines}\n{speeds_line}# AWCT: {:.6}\n# makespan: {:.6}\n",
        algo.name(),
        schedule.awct_on(&instance, &cluster),
        makespan_on(&schedule, &instance, &cluster)
    );
    let csv = schedule_to_csv(&schedule);
    let obs_text = match &obs {
        Some((subscriber, _guard)) => obs_epilogue(flags, subscriber)?,
        None => String::new(),
    };
    match flags.get("out") {
        Some(path) => {
            std::fs::write(PathBuf::from(path), format!("{report}{csv}"))?;
            Ok(format!(
                "scheduled {} jobs with {}; AWCT = {:.3}; wrote {path}\n{obs_text}",
                instance.len(),
                algo.name(),
                schedule.awct_on(&instance, &cluster)
            ))
        }
        None => {
            report.push_str(&csv);
            report.push_str(&obs_text);
            Ok(report)
        }
    }
}

fn compare(flags: &Flags) -> Result<String, CliError> {
    let instance = load_instance(flags.require("trace")?)?;
    let machines: usize = flags.get_parsed("machines", 20)?;
    let cluster = cluster_from_flags(flags, machines)?;
    let names = flags
        .get("algos")
        .unwrap_or("mris,pq-wsjf,tetris,bf-exec,ca-pq");
    // The provable lower bound assumes identical unit-speed machines, so
    // the ratio column only applies on a uniform cluster.
    let lb = awct_lower_bound(&instance, machines);
    let mut table = Table::new(vec![
        "algorithm",
        "AWCT",
        "AWCT/LB",
        "makespan",
        "median delay",
        "zero-delay",
    ]);
    for name in names.split(',') {
        let algo = algorithm_for_workload(name.trim(), &instance, &cluster)?;
        let schedule = algo
            .try_schedule_on(&instance, &cluster)
            .map_err(|e| CliError(format!("{}: {e}", algo.name())))?;
        schedule
            .validate_on(&instance, &cluster)
            .map_err(|e| CliError(format!("{}: invalid schedule: {e}", algo.name())))?;
        let awct = schedule.awct_on(&instance, &cluster);
        let cdf = Cdf::new(schedule.queuing_delays(&instance));
        table.push_row(vec![
            algo.name(),
            format!("{awct:.1}"),
            if cluster.is_uniform() {
                format!("{:.2}", awct / lb)
            } else {
                "-".to_string()
            },
            format!("{:.1}", makespan_on(&schedule, &instance, &cluster)),
            format!("{:.1}", cdf.quantile(0.5)),
            format!("{:.0}%", cdf.fraction_zero() * 100.0),
        ]);
    }
    let cluster_note = match flags.get("speeds") {
        Some(raw) => format!(", related speeds {raw}"),
        None => String::new(),
    };
    Ok(format!(
        "{} jobs, {} resources, {machines} machines{cluster_note} \
         (AWCT/LB upper-bounds the true ratio)\n\n{}",
        instance.len(),
        instance.num_resources(),
        table.to_markdown()
    ))
}

fn validate(flags: &Flags) -> Result<String, CliError> {
    let instance = load_instance(flags.require("trace")?)?;
    let machines: usize = flags.get_parsed("machines", 20)?;
    let path = flags.require("schedule")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    let schedule = parse_schedule_csv(&text, instance.len(), machines)
        .map_err(|e| CliError(format!("{path}: {e}")))?;
    match schedule.validate(&instance) {
        Ok(()) => Ok(format!(
            "OK: feasible schedule\nAWCT     = {:.6}\nmakespan = {:.6}\nmean delay = {:.6}\n",
            schedule.awct(&instance),
            schedule.makespan(&instance),
            schedule.queuing_delays(&instance).iter().sum::<f64>() / instance.len().max(1) as f64,
        )),
        Err(e) => Err(CliError(format!("INFEASIBLE: {e}"))),
    }
}

fn chaos(flags: &Flags) -> Result<String, CliError> {
    let instance = load_instance(flags.require("trace")?)?;
    let machines: usize = flags.get_parsed("machines", 20)?;
    let rate: f64 = flags.get_parsed("rate", 1.0)?;
    let mttr_frac: f64 = flags.get_parsed("mttr-frac", 0.05)?;
    let seed: u64 = flags.get_parsed("seed", 0xC4A05)?;
    let aging_factor: f64 = flags.get_parsed("aging-factor", 2.0)?;
    if !rate.is_finite() || rate < 0.0 {
        return Err(CliError(format!(
            "--rate must be finite and >= 0, got {rate}"
        )));
    }
    if !mttr_frac.is_finite() || mttr_frac <= 0.0 {
        return Err(CliError(format!(
            "--mttr-frac must be finite and > 0, got {mttr_frac}"
        )));
    }
    let restart = restart_from_flags(flags, aging_factor)?;
    let names = flags
        .get("algos")
        .unwrap_or("mris,pq-wsjf,tetris,bf-exec,ca-pq");
    let horizon = suggested_horizon(&instance, machines);
    let plan = if rate == 0.0 {
        FaultPlan::none()
    } else {
        FaultPlan::poisson(&PoissonFaultConfig {
            seed,
            num_machines: machines,
            horizon,
            mtbf: horizon / rate,
            mttr: mttr_frac * horizon,
        })
    };
    let mut table = Table::new(vec![
        "algorithm",
        "AWCT (no faults)",
        "AWCT (chaos)",
        "inflation",
        "failures",
        "re-releases",
    ]);
    for name in names.split(',') {
        let algo = algorithm_by_name(name.trim())?;
        let baseline = algo.schedule(&instance, machines);
        let mut policy = online_policy_by_name(name.trim(), &instance, machines)?;
        let outcome = run_online_chaos(&instance, machines, policy.as_mut(), &plan, restart)
            .map_err(|e| CliError(format!("{}: chaos run failed: {e}", algo.name())))?;
        outcome
            .log
            .verify()
            .map_err(|v| CliError(format!("{}: invariant violation: {v}", algo.name())))?;
        let base_awct = baseline.awct(&instance);
        let chaos_awct = outcome.schedule.awct(&instance);
        table.push_row(vec![
            algo.name(),
            format!("{base_awct:.1}"),
            format!("{chaos_awct:.1}"),
            format!("{:.3}", chaos_awct / base_awct),
            format!("{}", outcome.log.failures.len()),
            format!("{}", outcome.log.total_re_releases()),
        ]);
    }
    Ok(format!(
        "{} jobs, {} resources, {machines} machines; failure rate {rate} \
         (per-machine MTBF = horizon/rate, horizon {horizon:.1}), restart = {}\n\n{}",
        instance.len(),
        instance.num_resources(),
        restart.label(),
        table.to_markdown()
    ))
}

fn restart_from_flags(flags: &Flags, aging_factor: f64) -> Result<RestartSemantics, CliError> {
    match flags.get("restart").unwrap_or("full") {
        "full" => Ok(RestartSemantics::FullRestart),
        "aging" => Ok(RestartSemantics::WeightAging {
            factor: aging_factor,
        }),
        other => Err(CliError(format!(
            "--restart must be 'full' or 'aging', got '{other}'"
        ))),
    }
}

/// Parses `--tenants "name:token:weight[,name:token:weight...]"` into a
/// tenant table. An empty/absent flag means single-tenant.
fn tenants_from_flags(flags: &Flags) -> Result<Vec<TenantSpec>, CliError> {
    let Some(spec) = flags.get("tenants") else {
        return Ok(Vec::new());
    };
    let mut tenants = Vec::new();
    for entry in spec.split(',').filter(|e| !e.is_empty()) {
        let parts: Vec<&str> = entry.split(':').collect();
        let [name, token, weight] = parts.as_slice() else {
            return Err(CliError(format!(
                "--tenants: expected name:token:weight, got '{entry}'"
            )));
        };
        let weight: f64 = weight
            .parse()
            .map_err(|e| CliError(format!("--tenants: weight of '{name}': {e}")))?;
        tenants.push(TenantSpec::new(*name, *token, weight));
    }
    Ok(tenants)
}

/// Reads the service knobs shared by `serve` and `loadgen` into a
/// [`ServiceConfig`]: `--epoch`, `--queue-watermark`, `--load-watermark`,
/// `--tenants`, `--fair-watermark`.
fn service_cfg_from_flags(flags: &Flags, machines: usize) -> Result<ServiceConfig, CliError> {
    if machines == 0 {
        return Err(CliError("--machines must be at least 1".into()));
    }
    let epoch: f64 = flags.get_parsed("epoch", 0.0)?;
    let queue_watermark: usize = flags.get_parsed("queue-watermark", usize::MAX)?;
    let load_watermark: f64 = flags.get_parsed("load-watermark", f64::INFINITY)?;
    let fair_watermark: usize = flags.get_parsed("fair-watermark", usize::MAX)?;
    ServiceConfig::builder(machines)
        .epoch(epoch)
        .queue_watermark(queue_watermark)
        .load_watermark(load_watermark)
        .tenants(tenants_from_flags(flags)?)
        .fair_watermark(fair_watermark)
        .build()
        .map_err(|e| {
            // Re-key the typed error onto the CLI flag that caused it.
            use mris_types::ConfigError;
            CliError(match &e {
                ConfigError::InvalidEpoch { .. } => format!("--epoch: {e}"),
                ConfigError::ZeroQueueWatermark => format!("--queue-watermark: {e}"),
                ConfigError::InvalidLoadWatermark { .. } => format!("--load-watermark: {e}"),
                _ => e.to_string(),
            })
        })
}

/// Durability knobs shared by `serve` and `restore`: where the journal
/// lives, how often it is flushed, and where snapshots go.
struct DurabilitySetup {
    journal: String,
    dcfg: DurabilityConfig,
    snapshot_dir: Option<String>,
}

/// Reads `--flush-every` / `--snapshot-every` into a [`DurabilityConfig`].
/// Snapshots default on (every 64 events) when a snapshot destination is
/// named, off otherwise. The cadences feed the journal's configuration
/// fingerprint, so a `restore` must repeat the original run's flags.
fn durability_cfg_from_flags(flags: &Flags) -> Result<DurabilityConfig, CliError> {
    let snapshot_default = if flags.get("snapshot-dir").is_some() {
        64
    } else {
        0
    };
    let flush_every: u32 = flags.get_parsed("flush-every", 1)?;
    let snapshot_every: u32 = flags.get_parsed("snapshot-every", snapshot_default)?;
    if flush_every == 0 {
        return Err(CliError("--flush-every must be at least 1".into()));
    }
    Ok(DurabilityConfig {
        flush_every,
        snapshot_every,
    })
}

/// Reads the `serve` durability flags. `None` when `--journal` is absent.
fn durability_setup(flags: &Flags) -> Result<Option<DurabilitySetup>, CliError> {
    let Some(journal) = flags.get("journal") else {
        if flags.get("snapshot-dir").is_some() {
            return Err(CliError("--snapshot-dir requires --journal".into()));
        }
        return Ok(None);
    };
    Ok(Some(DurabilitySetup {
        journal: journal.to_string(),
        dcfg: durability_cfg_from_flags(flags)?,
        snapshot_dir: flags.get("snapshot-dir").map(str::to_string),
    }))
}

/// Feeds every job of `instance` through the admission path of a fresh
/// service (at its release time, in `(release, id)` order), drains, and
/// verifies the fault log. With `telemetry`, per-epoch records and the
/// summary stream to that JSONL file. With `durability`, every
/// state-mutating event is journaled (and optionally snapshotted) as it
/// happens.
fn drive_service(
    instance: &Instance,
    name: &str,
    cfg: ServiceConfig,
    telemetry: Option<&str>,
    durability: Option<&DurabilitySetup>,
) -> Result<ServiceReport, CliError> {
    let machines = cfg.num_machines;
    let policy = online_policy_by_name(name, instance, machines)?;
    let writer: Box<dyn std::io::Write> = match telemetry {
        Some(path) => Box::new(
            std::fs::File::create(path)
                .map_err(|e| CliError(format!("cannot create {path}: {e}")))?,
        ),
        None => Box::new(std::io::sink()),
    };
    // The bridge leaves the JSONL bytes untouched and mirrors records into
    // the obs layer when a subscriber is installed.
    let mut service = Service::new(
        instance.clone(),
        policy,
        cfg,
        SimClock::new(),
        ObsBridge::new(JsonlSink::new(writer)),
    )?;
    if let Some(setup) = durability {
        let file = std::fs::File::create(&setup.journal)
            .map_err(|e| CliError(format!("cannot create {}: {e}", setup.journal)))?;
        let snapshots: Box<dyn SnapshotStore + Send> = match &setup.snapshot_dir {
            Some(dir) => Box::new(
                DirSnapshots::new(dir)
                    .map_err(|e| CliError(format!("cannot create {dir}: {e}")))?,
            ),
            None => Box::new(NullSnapshots),
        };
        service.attach_journal(
            setup.dcfg,
            Box::new(std::io::BufWriter::new(file)),
            snapshots,
        )?;
    }
    let mut order: Vec<JobId> = instance.jobs().iter().map(|j| j.id).collect();
    order.sort_by(|&a, &b| {
        instance
            .job(a)
            .release
            .total_cmp(&instance.job(b).release)
            .then(a.cmp(&b))
    });
    for job in order {
        // Admission rejections are recorded in the report's ledger; only
        // policy failures abort the run.
        let _ = service
            .submit_at(instance.job(job).release, job)
            .map_err(|e| CliError(format!("{name}: service error: {e}")))?;
    }
    if let Some(e) = service.durability_error() {
        return Err(CliError(format!("{name}: journal write failed: {e}")));
    }
    let (report, sink) = service
        .drain()
        .map_err(|e| CliError(format!("{name}: drain failed: {e}")))?;
    sink.into_inner()
        .finish()
        .map_err(|e| CliError(format!("telemetry write failed: {e}")))?;
    report
        .log
        .verify()
        .map_err(|v| CliError(format!("{name}: fault-log violation: {v}")))?;
    Ok(report)
}

fn service_summary_text(report: &ServiceReport) -> String {
    let s = &report.summary;
    let latency = match &s.decision_latency_us {
        Some(p) => format!("{:.1}/{:.1}/{:.1} us", p.p50, p.p95, p.p99),
        None => "n/a".to_string(),
    };
    let mut tenant_text = String::new();
    for t in &report.tenants {
        tenant_text.push_str(&format!(
            "tenant {} (weight {}): admitted = {} ({} demand ticks), rejected = {}\n",
            t.name, t.weight, t.admitted, t.admitted_cost, t.rejected
        ));
    }
    tenant_text
        + &format!(
            "submitted   = {}\n\
         accepted    = {}\n\
         rejected    = {} (queue full {}, load shed {})\n\
         completed   = {}\n\
         failures    = {} (re-releases {})\n\
         epochs      = {} (max queue depth {})\n\
         AWCT        = {:.6}\n\
         makespan    = {:.6}\n\
         drained at t = {:.3} ({:.3}s wall, {:.0} jobs/s)\n\
         decision latency p50/p95/p99 = {latency}\n\
         fault log verified OK\n",
            s.submitted,
            s.accepted,
            s.rejected_queue_full + s.rejected_infeasible,
            s.rejected_queue_full,
            s.rejected_infeasible,
            s.completed,
            s.failures,
            report.log.total_re_releases(),
            s.epochs,
            s.max_queue_depth,
            s.awct,
            s.makespan,
            s.drained_at,
            s.wall_seconds,
            s.throughput_jobs_per_sec,
        )
}

fn serve(flags: &Flags) -> Result<String, CliError> {
    if let Some(listen) = flags.get("listen") {
        return serve_listen(flags, listen);
    }
    let instance = load_instance(flags.require("trace")?)?;
    let machines: usize = flags.get_parsed("machines", 20)?;
    let name = flags.get("algo").unwrap_or("mris");
    let cfg = service_cfg_from_flags(flags, machines)?;
    let epoch = cfg.epoch;
    let obs = obs_from_flags(flags)?;
    let durability = durability_setup(flags)?;
    let report = drive_service(
        &instance,
        name,
        cfg,
        flags.get("telemetry"),
        durability.as_ref(),
    )?;
    let obs_text = match &obs {
        Some((subscriber, _guard)) => obs_epilogue(flags, subscriber)?,
        None => String::new(),
    };
    let journal_text = match &durability {
        Some(setup) => {
            let bytes = std::fs::metadata(&setup.journal)
                .map(|m| m.len())
                .unwrap_or(0);
            let snap_text = match &setup.snapshot_dir {
                Some(dir) => format!(", snapshots in {dir} every {}", setup.dcfg.snapshot_every),
                None => String::new(),
            };
            format!(
                "journal     = {} ({bytes} bytes, flush every {}{snap_text})\n",
                setup.journal, setup.dcfg.flush_every
            )
        }
        None => String::new(),
    };
    Ok(format!(
        "serve: {} jobs, {} resources, {machines} machines, algo = {name}, epoch = {epoch}\n\n{}{journal_text}{obs_text}",
        instance.len(),
        instance.num_resources(),
        service_summary_text(&report)
    ))
}

/// `mris serve --listen`: open the TCP front door on `listen` and block
/// until a client drains the service. The workload is `--trace`, or the
/// loadgen generator when `--loadgen` is given (so a `loadgen --connect`
/// twin regenerates the identical instance client-side — the handshake
/// fingerprint pins the match). The bound address lands in `--port-file`
/// (and on stderr) before the server blocks, so scripts can discover an
/// ephemeral port.
fn serve_listen(flags: &Flags, listen: &str) -> Result<String, CliError> {
    let (instance, cfg, name, source_text) = if flags.switch("loadgen") {
        let plan = loadgen_plan(flags)?;
        let text = format!("workload: {}\n", plan.header.replace('\n', "\n          "));
        (plan.instance, plan.cfg, plan.name, text)
    } else {
        let machines: usize = flags.get_parsed("machines", 20)?;
        let name = flags.get("algo").unwrap_or("mris").to_string();
        let instance = load_instance(flags.require("trace")?)?;
        let cfg = service_cfg_from_flags(flags, machines)?;
        (instance, cfg, name, String::new())
    };
    let machines = cfg.num_machines;
    // Validate the policy name before the worker thread needs it.
    let _ = online_policy_by_name(&name, &instance, machines)?;
    let obs = obs_from_flags(flags)?;
    let writer: Box<dyn std::io::Write + Send> = match flags.get("telemetry") {
        Some(path) => Box::new(
            std::fs::File::create(path)
                .map_err(|e| CliError(format!("cannot create {path}: {e}")))?,
        ),
        None => Box::new(std::io::sink()),
    };
    let fingerprint = service_fingerprint(&instance, &cfg);
    let tenant_text = if cfg.tenants.is_empty() {
        "single-tenant (any token)".to_string()
    } else {
        format!(
            "{} tenants ({})",
            cfg.tenants.len(),
            cfg.tenants
                .iter()
                .map(|t| format!("{}:{}", t.name, t.weight))
                .collect::<Vec<_>>()
                .join(", ")
        )
    };
    let policy_name = name.clone();
    let server = mris_net::serve_net(
        instance.clone(),
        cfg,
        SimClock::new(),
        ObsBridge::new(JsonlSink::new(writer)),
        move |inst, m| online_policy_by_name(&policy_name, inst, m).expect("validated above"),
        listen,
    )
    .map_err(|e| CliError(format!("serve --listen {listen}: {e}")))?;
    let addr = server.addr();
    if let Some(path) = flags.get("port-file") {
        std::fs::write(path, addr.to_string())
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    }
    eprintln!(
        "mris: serving {} jobs on {addr} (algo {name}, {tenant_text}, \
         fingerprint {fingerprint:#018x}); blocks until `mris client drain --connect {addr}`",
        instance.len()
    );
    let (report, sink) = server
        .wait()
        .map_err(|e| CliError(format!("{name}: {e}")))?;
    sink.into_inner()
        .finish()
        .map_err(|e| CliError(format!("telemetry write failed: {e}")))?;
    report
        .log
        .verify()
        .map_err(|v| CliError(format!("{name}: fault-log violation: {v}")))?;
    let obs_text = match &obs {
        Some((subscriber, _guard)) => obs_epilogue(flags, subscriber)?,
        None => String::new(),
    };
    Ok(format!(
        "serve: {} jobs, {} resources, {machines} machines, algo = {name}, \
         listened on {addr}\n{source_text}tenancy: {tenant_text}, \
         fingerprint = {fingerprint:#018x}\n\n{}{obs_text}",
        instance.len(),
        instance.num_resources(),
        service_summary_text(&report)
    ))
}

/// `mris restore`: rebuild a service from a journal (and optional
/// snapshot), then finish the run — resubmitting every job the crash cut
/// off at its release time — and print both the restore report and the
/// drained summary. The same trace/algo/knobs as the original `serve`
/// must be given; the journal's configuration fingerprint enforces it.
fn restore(flags: &Flags) -> Result<String, CliError> {
    let instance = load_instance(flags.require("trace")?)?;
    let machines: usize = flags.get_parsed("machines", 20)?;
    let name = flags.get("algo").unwrap_or("mris");
    let cfg = service_cfg_from_flags(flags, machines)?;
    let dcfg = durability_cfg_from_flags(flags)?;
    let journal_path = flags.require("journal")?;
    let journal = std::fs::read(journal_path)
        .map_err(|e| CliError(format!("cannot read {journal_path}: {e}")))?;
    let snapshot: Option<Vec<u8>> = match (flags.get("snapshot"), flags.get("snapshot-dir")) {
        (Some(path), _) => {
            Some(std::fs::read(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?)
        }
        (None, Some(dir)) => DirSnapshots::latest(std::path::Path::new(dir))
            .map_err(|e| CliError(format!("cannot read snapshots in {dir}: {e}")))?,
        (None, None) => None,
    };
    let outage = match flags.get("outage-at") {
        Some(_) => Some(Outage {
            at: flags.get_parsed("outage-at", 0.0)?,
            downtime: flags.get_parsed("outage-downtime", 1.0)?,
        }),
        None => None,
    };
    let opts = RestoreOptions {
        strict: flags.switch("strict"),
        outage,
    };
    let policy = online_policy_by_name(name, &instance, machines)?;
    let (mut service, restore) = Service::restore(
        instance.clone(),
        policy,
        cfg,
        dcfg,
        SimClock::new(),
        NullSink,
        &journal,
        snapshot.as_deref(),
        opts,
    )?;

    // Finish the run: offer everything the crash cut off, in the same
    // (release, id) order the original serve used, never before the
    // replayed frontier.
    let mut remaining: Vec<JobId> = instance
        .jobs()
        .iter()
        .map(|j| j.id)
        .filter(|&j| matches!(service.outcome(j), JobOutcome::NotSubmitted))
        .collect();
    remaining.sort_by(|&a, &b| {
        instance
            .job(a)
            .release
            .total_cmp(&instance.job(b).release)
            .then(a.cmp(&b))
    });
    let resubmitted = remaining.len();
    for job in remaining {
        let at = instance.job(job).release.max(restore.resumed_at);
        let _ = service
            .submit_at(at, job)
            .map_err(|e| CliError(format!("{name}: service error after restore: {e}")))?;
    }
    let (report, _sink) = service
        .drain()
        .map_err(|e| CliError(format!("{name}: drain failed after restore: {e}")))?;
    report
        .log
        .verify()
        .map_err(|v| CliError(format!("{name}: fault-log violation: {v}")))?;

    let snapshot_text = match restore.snapshot_verified {
        Some(lsn) => format!("verified at lsn {lsn}"),
        None if snapshot.is_some() => "supplied but not reached".to_string(),
        None => "none".to_string(),
    };
    let tail_text = match &restore.tail_error {
        Some(e) => format!(" ({e})"),
        None => String::new(),
    };
    Ok(format!(
        "restore: {} jobs, {machines} machines, algo = {name}\n\n\
         records     = {} replayed ({} regenerated past the journal end)\n\
         torn tail   = {} bytes dropped{tail_text}\n\
         snapshot    = {snapshot_text}\n\
         shutdown    = {}\n\
         resumed at t = {:.3} ({:.3}s wall); resubmitted {resubmitted} jobs\n\n{}",
        instance.len(),
        restore.records,
        restore.regenerated,
        restore.torn_tail_bytes,
        if restore.clean_shutdown {
            "clean"
        } else {
            "crash"
        },
        restore.resumed_at,
        restore.restore_seconds,
        service_summary_text(&report)
    ))
}

/// Everything `loadgen` derives from its flags before driving a service:
/// the generated instance, the service config (fault plan and restart
/// semantics included), the policy name, and the header lines describing
/// the run. `serve --listen --loadgen` builds the same plan server-side,
/// so a `loadgen --connect` client regenerates the identical world and
/// the handshake fingerprint proves it.
struct LoadgenPlan {
    instance: Instance,
    cfg: ServiceConfig,
    name: String,
    header: String,
}

fn loadgen_plan(flags: &Flags) -> Result<LoadgenPlan, CliError> {
    let jobs: usize = flags.get_parsed("jobs", 500)?;
    let seed: u64 = flags.get_parsed("seed", 0x10AD)?;
    let machines: usize = flags.get_parsed("machines", 8)?;
    let name = flags.get("algo").unwrap_or("mris");
    let utilization: f64 = flags.get_parsed("utilization", 0.7)?;
    if jobs == 0 {
        return Err(CliError("--jobs must be at least 1".into()));
    }
    if !utilization.is_finite() || utilization <= 0.0 {
        return Err(CliError(format!(
            "--utilization must be finite and > 0, got {utilization}"
        )));
    }
    let mut cfg = service_cfg_from_flags(flags, machines)?;

    // Shapes are arrival-process independent for a fixed seed: probe once
    // to calibrate the Poisson rate against the target utilization.
    let probe = generate_workload(&LoadGenConfig {
        num_jobs: jobs,
        seed,
        arrivals: ArrivalProcess::Bursts {
            period: 1.0,
            size: 1,
        },
    });
    let rate = match flags.get("rate") {
        Some(_) => flags.get_parsed("rate", 0.0)?,
        None => poisson_rate_for_utilization(&probe.instance, machines, utilization),
    };
    if !rate.is_finite() || rate <= 0.0 {
        return Err(CliError(format!(
            "--rate must be finite and > 0, got {rate}"
        )));
    }
    let process = flags.get("process").unwrap_or("poisson");
    let arrivals = match process {
        "poisson" => ArrivalProcess::Poisson { rate },
        "bursts" => {
            let size: usize = flags.get_parsed("burst-size", (jobs / 20).max(1))?;
            if size == 0 {
                return Err(CliError("--burst-size must be at least 1".into()));
            }
            ArrivalProcess::Bursts {
                period: size as f64 / rate,
                size,
            }
        }
        other => {
            return Err(CliError(format!(
                "--process must be 'poisson' or 'bursts', got '{other}'"
            )))
        }
    };
    let workload = generate_workload(&LoadGenConfig {
        num_jobs: jobs,
        seed,
        arrivals,
    });

    // Optional fault layer, replayed against the live service.
    let plan_name = flags.get("fault-plan").unwrap_or("none");
    let fault_rate: f64 = flags.get_parsed("fault-rate", 1.0)?;
    let mttr_frac: f64 = flags.get_parsed("mttr-frac", 0.05)?;
    let fault_seed: u64 = flags.get_parsed("fault-seed", seed ^ 0xFA17)?;
    if !fault_rate.is_finite() || fault_rate < 0.0 {
        return Err(CliError(format!(
            "--fault-rate must be finite and >= 0, got {fault_rate}"
        )));
    }
    if !mttr_frac.is_finite() || mttr_frac <= 0.0 {
        return Err(CliError(format!(
            "--mttr-frac must be finite and > 0, got {mttr_frac}"
        )));
    }
    if !matches!(plan_name, "none" | "poisson" | "racks" | "adversarial") {
        return Err(CliError(format!(
            "--fault-plan must be one of none|poisson|racks|adversarial, got '{plan_name}'"
        )));
    }
    let horizon = suggested_horizon(&workload.instance, machines);
    let plan = if plan_name == "none" || fault_rate == 0.0 {
        FaultPlan::none()
    } else {
        match plan_name {
            "poisson" => FaultPlan::poisson(&PoissonFaultConfig {
                seed: fault_seed,
                num_machines: machines,
                horizon,
                mtbf: horizon / fault_rate,
                mttr: mttr_frac * horizon,
            }),
            "racks" => FaultPlan::rack_bursts(&RackBurstConfig {
                seed: fault_seed,
                num_machines: machines,
                rack_size: (machines / 4).max(1),
                horizon,
                mtbb: horizon / fault_rate,
                downtime: mttr_frac * horizon,
            }),
            _ => FaultPlan::adversarial_busiest(
                fault_rate.ceil() as usize,
                0.1 * horizon,
                0.8 * horizon / fault_rate.ceil(),
                mttr_frac * horizon,
            ),
        }
    };
    let plan_events = plan.len();
    cfg.restart = restart_from_flags(flags, flags.get_parsed("aging-factor", 2.0)?)?;
    let restart_label = cfg.restart.label();
    cfg.fault_plan = plan;

    let header = format!(
        "loadgen: {jobs} jobs, {machines} machines, algo = {name}, process = {process} \
         (rate {rate:.4}/s, target utilization {utilization})\n\
         faults: plan = {plan_name} ({plan_events} events over horizon {horizon:.1}), \
         restart = {restart_label}"
    );
    Ok(LoadgenPlan {
        instance: workload.instance,
        cfg,
        name: name.to_string(),
        header,
    })
}

fn loadgen(flags: &Flags) -> Result<String, CliError> {
    let plan = loadgen_plan(flags)?;
    if let Some(addr) = flags.get("connect") {
        return loadgen_connect(flags, plan, addr);
    }
    let obs = obs_from_flags(flags)?;
    let report = drive_service(
        &plan.instance,
        &plan.name,
        plan.cfg,
        flags.get("telemetry"),
        None,
    )?;
    let obs_text = match &obs {
        Some((subscriber, _guard)) => obs_epilogue(flags, subscriber)?,
        None => String::new(),
    };
    Ok(format!(
        "{}\n\n{}{obs_text}",
        plan.header,
        service_summary_text(&report)
    ))
}

/// `mris loadgen --connect`: replay the generated workload (fault plan
/// and all) over TCP against a `serve --listen --loadgen` twin started
/// with the same flags. The handshake pins the configuration fingerprint
/// of the regenerated world, and the drained report's fault log is
/// verified exactly as the in-process path does.
fn loadgen_connect(flags: &Flags, plan: LoadgenPlan, addr: &str) -> Result<String, CliError> {
    let token = flags.get("token").unwrap_or("");
    let fingerprint = service_fingerprint(&plan.instance, &plan.cfg);
    let mut client = NetClient::connect(addr, token, fingerprint)
        .map_err(|e| CliError(format!("connect {addr}: {e}")))?;
    let mut order: Vec<JobId> = plan.instance.jobs().iter().map(|j| j.id).collect();
    order.sort_by(|&a, &b| {
        plan.instance
            .job(a)
            .release
            .total_cmp(&plan.instance.job(b).release)
            .then(a.cmp(&b))
    });
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for job in order {
        let at = plan.instance.job(job).release;
        match client
            .submit_at(at, job)
            .map_err(|e| CliError(format!("submit over {addr}: {e}")))?
        {
            Ok(()) => accepted += 1,
            Err(_) => rejected += 1,
        }
    }
    let report = client
        .drain()
        .map_err(|e| CliError(format!("drain over {addr}: {e}")))?;
    report
        .log
        .verify()
        .map_err(|v| CliError(format!("fault-log violation over TCP: {v}")))?;
    Ok(format!(
        "{}\n\
         over TCP: {addr} (fingerprint {fingerprint:#018x}), \
         door accepted {accepted} / rejected {rejected}\n\n{}",
        plan.header,
        service_summary_text(&report)
    ))
}

/// `mris client <submit|query|stats|drain>`: a thin remote control for a
/// `serve --listen` door.
fn client(args: &[String]) -> Result<String, CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(CliError(format!(
            "client needs an action: mris client <submit|query|stats|drain> \
             --connect HOST:PORT\n\n{}",
            usage()
        )));
    };
    let flags = Flags::parse(rest)?;
    let addr = flags.require("connect")?;
    let token = flags.get("token").unwrap_or("");
    let fingerprint: u64 = flags.get_parsed("fingerprint", 0)?;
    let mut client = NetClient::connect(addr, token, fingerprint)
        .map_err(|e| CliError(format!("connect {addr}: {e}")))?;
    match action.as_str() {
        "submit" => {
            let instance = load_instance(flags.require("trace")?)?;
            let mut order: Vec<JobId> = instance.jobs().iter().map(|j| j.id).collect();
            order.sort_by(|&a, &b| {
                instance
                    .job(a)
                    .release
                    .total_cmp(&instance.job(b).release)
                    .then(a.cmp(&b))
            });
            let (mut accepted, mut rejected) = (0u64, 0u64);
            let mut first_rejection = None;
            for job in order {
                match client
                    .submit_at(instance.job(job).release, job)
                    .map_err(|e| CliError(format!("submit over {addr}: {e}")))?
                {
                    Ok(()) => accepted += 1,
                    Err(e) => {
                        rejected += 1;
                        first_rejection.get_or_insert_with(|| format!("{e}"));
                    }
                }
            }
            let rejection_text = match first_rejection {
                Some(e) => format!(" (first: {e})"),
                None => String::new(),
            };
            Ok(format!(
                "client submit: offered {} jobs to {addr} as tenant {}, \
                 accepted {accepted}, rejected {rejected}{rejection_text}\n",
                instance.len(),
                client.tenant()
            ))
        }
        "query" => {
            let job: u32 = flags
                .require("job")?
                .parse()
                .map_err(|e| CliError(format!("--job: {e}")))?;
            let outcome = client
                .query(JobId(job))
                .map_err(|e| CliError(format!("query over {addr}: {e}")))?;
            Ok(format!("job {job}: {outcome:?}\n"))
        }
        "stats" => {
            let s = client
                .stats()
                .map_err(|e| CliError(format!("stats over {addr}: {e}")))?;
            let mut text = format!(
                "stats at t = {:.3}: queue depth {}, submitted {}, accepted {}, \
                 rejected {}, completed {}\n",
                s.now, s.queue_depth, s.submitted, s.accepted, s.rejected, s.completed
            );
            for t in &s.tenants {
                text.push_str(&format!(
                    "tenant {} (weight {}): admitted {} ({} demand ticks), rejected {}\n",
                    t.name, t.weight, t.admitted, t.admitted_cost, t.rejected
                ));
            }
            Ok(text)
        }
        "drain" => {
            let report = client
                .drain()
                .map_err(|e| CliError(format!("drain over {addr}: {e}")))?;
            report
                .log
                .verify()
                .map_err(|v| CliError(format!("fault-log violation over TCP: {v}")))?;
            Ok(format!(
                "client drain: final report from {addr}\n\n{}",
                service_summary_text(&report)
            ))
        }
        other => Err(CliError(format!(
            "unknown client action '{other}' (expected submit|query|stats|drain)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mris_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn generate_schedule_validate_pipeline() {
        let trace_path = tmp("pipeline_trace.csv");
        let sched_path = tmp("pipeline_schedule.csv");
        let out = run(&s(&[
            "generate",
            "--jobs",
            "300",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("300 jobs"));

        let out = run(&s(&[
            "schedule",
            "--trace",
            trace_path.to_str().unwrap(),
            "--algo",
            "mris",
            "--machines",
            "4",
            "--out",
            sched_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("MRIS-WSJF"), "{out}");

        let out = run(&s(&[
            "validate",
            "--trace",
            trace_path.to_str().unwrap(),
            "--schedule",
            sched_path.to_str().unwrap(),
            "--machines",
            "4",
        ]))
        .unwrap();
        assert!(out.starts_with("OK"), "{out}");
    }

    #[test]
    fn compare_prints_table() {
        let trace_path = tmp("compare_trace.csv");
        run(&s(&[
            "generate",
            "--jobs",
            "200",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&s(&[
            "compare",
            "--trace",
            trace_path.to_str().unwrap(),
            "--machines",
            "3",
            "--algos",
            "mris,pq-wsjf",
        ]))
        .unwrap();
        assert!(
            out.contains("MRIS-WSJF") && out.contains("PQ-WSJF"),
            "{out}"
        );
        assert!(out.contains("AWCT/LB"));
    }

    #[test]
    fn compare_on_related_speeds() {
        let trace_path = tmp("related_trace.csv");
        run(&s(&[
            "generate",
            "--jobs",
            "150",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&s(&[
            "compare",
            "--trace",
            trace_path.to_str().unwrap(),
            "--machines",
            "4",
            "--algos",
            "mris,pq-wsjf",
            "--speeds",
            "2.0,1.0,0.5",
        ]))
        .unwrap();
        // The unit-speed lower bound doesn't apply on a related cluster.
        assert!(out.contains("related speeds 2.0,1.0,0.5"), "{out}");
        assert!(out.contains(" - |"), "{out}");

        let err = run(&s(&[
            "schedule",
            "--trace",
            trace_path.to_str().unwrap(),
            "--algo",
            "mris",
            "--machines",
            "4",
            "--speeds",
            "0,-1",
        ]))
        .unwrap_err();
        assert!(err.0.contains("positive speed"), "{}", err.0);
    }

    #[test]
    fn chaos_reports_inflation_table() {
        let trace_path = tmp("chaos_trace.csv");
        run(&s(&[
            "generate",
            "--jobs",
            "120",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&s(&[
            "chaos",
            "--trace",
            trace_path.to_str().unwrap(),
            "--machines",
            "3",
            "--algos",
            "mris,pq-wsjf",
            "--rate",
            "1.0",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(
            out.contains("MRIS-WSJF") && out.contains("PQ-WSJF"),
            "{out}"
        );
        assert!(
            out.contains("inflation") && out.contains("re-releases"),
            "{out}"
        );
        // rate 0 degenerates to the failure-free run: inflation exactly 1.
        let out = run(&s(&[
            "chaos",
            "--trace",
            trace_path.to_str().unwrap(),
            "--machines",
            "3",
            "--algos",
            "pq-wsjf",
            "--rate",
            "0",
        ]))
        .unwrap();
        assert!(out.contains("1.000"), "{out}");
        // Aging restart is accepted; bogus restart is not.
        run(&s(&[
            "chaos",
            "--trace",
            trace_path.to_str().unwrap(),
            "--machines",
            "3",
            "--algos",
            "pq-wsjf",
            "--restart",
            "aging",
        ]))
        .unwrap();
        let err = run(&s(&[
            "chaos",
            "--trace",
            trace_path.to_str().unwrap(),
            "--restart",
            "sideways",
        ]))
        .unwrap_err();
        assert!(err.0.contains("'full' or 'aging'"), "{err}");
    }

    #[test]
    fn helpful_errors() {
        assert!(run(&s(&["bogus"])).is_err());
        assert!(run(&[]).is_err());
        let err = run(&s(&["schedule", "--algo", "mris"])).unwrap_err();
        assert!(err.0.contains("--trace"), "{err}");
        let err = run(&s(&[
            "schedule",
            "--trace",
            "/nonexistent",
            "--algo",
            "mris",
        ]))
        .unwrap_err();
        assert!(err.0.contains("cannot read"), "{err}");
    }

    #[test]
    fn serve_runs_trace_through_service() {
        let trace_path = tmp("serve_trace.csv");
        let jsonl_path = tmp("serve_telemetry.jsonl");
        run(&s(&[
            "generate",
            "--jobs",
            "80",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&s(&[
            "serve",
            "--trace",
            trace_path.to_str().unwrap(),
            "--algo",
            "mris",
            "--machines",
            "3",
            "--telemetry",
            jsonl_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("completed   = 80"), "{out}");
        assert!(out.contains("AWCT"), "{out}");
        assert!(out.contains("fault log verified OK"), "{out}");
        let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
        assert!(jsonl.contains("\"event\": \"epoch\""), "{jsonl}");
        assert!(jsonl.contains("\"event\": \"summary\""), "{jsonl}");

        // A tiny queue watermark sheds load instead of dropping silently.
        let out = run(&s(&[
            "serve",
            "--trace",
            trace_path.to_str().unwrap(),
            "--algo",
            "tetris",
            "--machines",
            "3",
            "--queue-watermark",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("queue full"), "{out}");
        let err = run(&s(&[
            "serve",
            "--trace",
            trace_path.to_str().unwrap(),
            "--queue-watermark",
            "0",
        ]))
        .unwrap_err();
        assert!(err.0.contains("queue-watermark"), "{err}");
    }

    #[test]
    fn serve_journal_then_restore_round_trips() {
        let trace_path = tmp("durable_trace.csv");
        let journal_path = tmp("durable.mrjl");
        let snap_dir = tmp("durable_snaps");
        run(&s(&[
            "generate",
            "--jobs",
            "60",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let serve_out = run(&s(&[
            "serve",
            "--trace",
            trace_path.to_str().unwrap(),
            "--algo",
            "pq-wsjf",
            "--machines",
            "3",
            "--journal",
            journal_path.to_str().unwrap(),
            "--snapshot-dir",
            snap_dir.to_str().unwrap(),
            "--snapshot-every",
            "16",
        ]))
        .unwrap();
        assert!(serve_out.contains("journal     ="), "{serve_out}");
        assert!(journal_path.exists());

        // A full journal restores cleanly to the same drained summary.
        let restore_out = run(&s(&[
            "restore",
            "--trace",
            trace_path.to_str().unwrap(),
            "--algo",
            "pq-wsjf",
            "--machines",
            "3",
            "--journal",
            journal_path.to_str().unwrap(),
            "--snapshot-dir",
            snap_dir.to_str().unwrap(),
            "--snapshot-every",
            "16",
        ]))
        .unwrap();
        assert!(restore_out.contains("shutdown    = clean"), "{restore_out}");
        assert!(restore_out.contains("resubmitted 0 jobs"), "{restore_out}");
        let serve_awct = serve_out
            .lines()
            .find(|l| l.starts_with("AWCT"))
            .unwrap()
            .to_string();
        assert!(restore_out.contains(&serve_awct), "{restore_out}");

        // A torn journal (crash mid-write) still restores: the cut tail is
        // dropped and replay regenerates the schedule up to the cut.
        let bytes = std::fs::read(&journal_path).unwrap();
        let torn_path = tmp("durable_torn.mrjl");
        std::fs::write(&torn_path, &bytes[..bytes.len() * 2 / 3]).unwrap();
        let torn_out = run(&s(&[
            "restore",
            "--trace",
            trace_path.to_str().unwrap(),
            "--algo",
            "pq-wsjf",
            "--machines",
            "3",
            "--journal",
            torn_path.to_str().unwrap(),
            "--snapshot-every",
            "16",
        ]))
        .unwrap();
        assert!(torn_out.contains("shutdown    = crash"), "{torn_out}");
        assert!(torn_out.contains(&serve_awct), "{torn_out}");

        // Wrong config ⇒ fingerprint mismatch, not a bogus replay.
        let err = run(&s(&[
            "restore",
            "--trace",
            trace_path.to_str().unwrap(),
            "--algo",
            "pq-wsjf",
            "--machines",
            "4",
            "--journal",
            journal_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.0.contains("fingerprint"), "{err}");
    }

    #[test]
    fn loadgen_replays_fault_plan_against_live_service() {
        let out = run(&s(&[
            "loadgen",
            "--jobs",
            "60",
            "--machines",
            "3",
            "--algo",
            "pq-wsjf",
            "--seed",
            "5",
            "--fault-plan",
            "poisson",
            "--fault-rate",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("plan = poisson"), "{out}");
        assert!(out.contains("fault log verified OK"), "{out}");
        assert!(out.contains("completed"), "{out}");

        // Burst arrivals and rack faults also drain clean.
        let out = run(&s(&[
            "loadgen",
            "--jobs",
            "40",
            "--machines",
            "4",
            "--algo",
            "tetris",
            "--process",
            "bursts",
            "--fault-plan",
            "racks",
            "--restart",
            "aging",
        ]))
        .unwrap();
        assert!(out.contains("process = bursts"), "{out}");
        assert!(out.contains("restart = aging"), "{out}");

        let err = run(&s(&["loadgen", "--fault-plan", "sideways"])).unwrap_err();
        assert!(err.0.contains("none|poisson|racks|adversarial"), "{err}");
        let err = run(&s(&["loadgen", "--process", "sideways"])).unwrap_err();
        assert!(err.0.contains("poisson"), "{err}");
    }

    #[test]
    fn run_alias_and_obs_flag() {
        let trace_path = tmp("obs_trace.csv");
        let prom_path = tmp("obs_metrics.prom");
        let events_path = tmp("obs_events.jsonl");
        run(&s(&[
            "generate",
            "--jobs",
            "60",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        // `run` resolves to the schedule verb; `--obs` is a switch flag that
        // appends the Prometheus rendering to the output.
        let out = run(&s(&[
            "run",
            "--trace",
            trace_path.to_str().unwrap(),
            "--algo",
            "mris",
            "--machines",
            "3",
            "--obs",
            "--obs-events",
            events_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("observability"), "{out}");
        assert!(out.contains("mris_knapsack_solves_total"), "{out}");
        assert!(out.contains("mris_timeline_probes_total"), "{out}");
        let events = std::fs::read_to_string(&events_path).unwrap();
        assert!(events.contains("mris_schedule_seconds"), "{events}");

        // With --metrics-path the exposition goes to the file instead.
        let out = run(&s(&[
            "schedule",
            "--trace",
            trace_path.to_str().unwrap(),
            "--algo",
            "pq-wsjf",
            "--machines",
            "3",
            "--metrics-path",
            prom_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote Prometheus metrics"), "{out}");
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        assert!(prom.contains("# TYPE"), "{prom}");
        mris_obs::validate_exposition(&prom).unwrap();
    }

    #[test]
    fn serve_writes_prometheus_metrics() {
        let trace_path = tmp("serve_prom_trace.csv");
        let prom_path = tmp("serve_metrics.prom");
        run(&s(&[
            "generate",
            "--jobs",
            "50",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&s(&[
            "serve",
            "--trace",
            trace_path.to_str().unwrap(),
            "--algo",
            "mris",
            "--machines",
            "3",
            "--metrics-path",
            prom_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote Prometheus metrics"), "{out}");
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        mris_obs::validate_exposition(&prom).unwrap();
        for family in [
            "mris_service_admitted_total",
            "mris_service_epochs_total",
            "mris_service_epoch_batch_size",
            "mris_service_decision_latency_seconds",
            "mris_dispatcher_placements_total",
            "mris_timeline_probes_total",
        ] {
            assert!(prom.contains(family), "missing {family} in:\n{prom}");
        }
    }

    #[test]
    fn unknown_algorithm_suggests_fix() {
        let trace_path = tmp("suggest_trace.csv");
        run(&s(&[
            "generate",
            "--jobs",
            "10",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let err = run(&s(&[
            "schedule",
            "--trace",
            trace_path.to_str().unwrap(),
            "--algo",
            "tetriss",
        ]))
        .unwrap_err();
        assert!(err.0.contains("did you mean 'tetris'"), "{err}");
    }

    #[test]
    fn validate_rejects_tampered_schedule() {
        let trace_path = tmp("tamper_trace.csv");
        let sched_path = tmp("tamper_schedule.csv");
        run(&s(&[
            "generate",
            "--jobs",
            "50",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&[
            "schedule",
            "--trace",
            trace_path.to_str().unwrap(),
            "--algo",
            "pq-wsjf",
            "--machines",
            "2",
            "--out",
            sched_path.to_str().unwrap(),
        ]))
        .unwrap();
        // Move every start to zero: releases are violated.
        let text = std::fs::read_to_string(&sched_path).unwrap();
        let tampered: String = text
            .lines()
            .map(|l| {
                if l.starts_with('#') || l.starts_with("job") {
                    l.to_string()
                } else {
                    let mut parts: Vec<&str> = l.split(',').collect();
                    parts[2] = "0";
                    parts.join(",")
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&sched_path, tampered).unwrap();
        let err = run(&s(&[
            "validate",
            "--trace",
            trace_path.to_str().unwrap(),
            "--schedule",
            sched_path.to_str().unwrap(),
            "--machines",
            "2",
        ]))
        .unwrap_err();
        assert!(err.0.contains("INFEASIBLE"), "{err}");
    }

    /// Polls `--port-file` until the server thread has written the bound
    /// address.
    fn wait_for_port_file(path: &std::path::Path) -> String {
        for _ in 0..500 {
            if let Ok(addr) = std::fs::read_to_string(path) {
                if !addr.is_empty() {
                    return addr;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("server never wrote {path:?}");
    }

    #[test]
    fn serve_listen_client_round_trip() {
        let trace_path = tmp("net_trace.csv");
        let port_file = tmp("net_port.txt");
        let _ = std::fs::remove_file(&port_file);
        run(&s(&[
            "generate",
            "--jobs",
            "40",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let server = {
            let trace = trace_path.to_str().unwrap().to_string();
            let port_file = port_file.to_str().unwrap().to_string();
            std::thread::spawn(move || {
                run(&s(&[
                    "serve",
                    "--trace",
                    &trace,
                    "--algo",
                    "pq-wsjf",
                    "--machines",
                    "3",
                    "--listen",
                    "127.0.0.1:0",
                    "--port-file",
                    &port_file,
                ]))
            })
        };
        let addr = wait_for_port_file(&port_file);

        let out = run(&s(&[
            "client",
            "submit",
            "--connect",
            &addr,
            "--trace",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("accepted 40, rejected 0"), "{out}");

        let out = run(&s(&["client", "query", "--connect", &addr, "--job", "0"])).unwrap();
        assert!(out.starts_with("job 0:"), "{out}");

        let out = run(&s(&["client", "stats", "--connect", &addr])).unwrap();
        assert!(out.contains("submitted 40"), "{out}");

        let out = run(&s(&["client", "drain", "--connect", &addr])).unwrap();
        assert!(out.contains("completed   = 40"), "{out}");
        assert!(out.contains("AWCT"), "{out}");
        assert!(out.contains("fault log verified OK"), "{out}");

        let server_out = server.join().unwrap().unwrap();
        assert!(server_out.contains("completed   = 40"), "{server_out}");
        assert!(server_out.contains("fingerprint"), "{server_out}");

        // The drained door refuses new connections (accept loop ended).
        let err = run(&s(&["client", "stats", "--connect", &addr]));
        assert!(err.is_err(), "drained server still answering: {err:?}");
    }

    #[test]
    fn loadgen_connects_to_loadgen_serve_twin() {
        let port_file = tmp("net_loadgen_port.txt");
        let _ = std::fs::remove_file(&port_file);
        let gen_flags = [
            "--loadgen",
            "--jobs",
            "60",
            "--seed",
            "77",
            "--machines",
            "2",
            "--algo",
            "pq-wsjf",
            "--fault-plan",
            "poisson",
            "--fault-rate",
            "2.0",
        ];
        let server = {
            let mut args = vec!["serve"];
            args.extend_from_slice(&gen_flags);
            args.extend_from_slice(&["--listen", "127.0.0.1:0", "--port-file"]);
            let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
            let port_file = port_file.to_str().unwrap().to_string();
            std::thread::spawn(move || {
                let mut args = args;
                args.push(port_file);
                run(&args)
            })
        };
        let addr = wait_for_port_file(&port_file);

        // Same generation flags minus --loadgen, plus --connect.
        let out = run(&s(&[
            "loadgen",
            "--jobs",
            "60",
            "--seed",
            "77",
            "--machines",
            "2",
            "--algo",
            "pq-wsjf",
            "--fault-plan",
            "poisson",
            "--fault-rate",
            "2.0",
            "--connect",
            &addr,
        ]))
        .unwrap();
        assert!(out.contains("over TCP"), "{out}");
        assert!(out.contains("fault log verified OK"), "{out}");
        assert!(out.contains("faults: plan = poisson"), "{out}");

        let server_out = server.join().unwrap().unwrap();
        assert!(server_out.contains("fault log verified OK"), "{server_out}");
    }

    #[test]
    fn loadgen_connect_refuses_mismatched_world() {
        let port_file = tmp("net_mismatch_port.txt");
        let _ = std::fs::remove_file(&port_file);
        let server = {
            let port_file = port_file.to_str().unwrap().to_string();
            std::thread::spawn(move || {
                run(&s(&[
                    "serve",
                    "--loadgen",
                    "--jobs",
                    "30",
                    "--seed",
                    "1",
                    "--machines",
                    "2",
                    "--listen",
                    "127.0.0.1:0",
                    "--port-file",
                    &port_file,
                ]))
            })
        };
        let addr = wait_for_port_file(&port_file);

        // A different seed regenerates a different world: the handshake
        // fingerprint refuses before any job crosses the wire.
        let err = run(&s(&[
            "loadgen",
            "--jobs",
            "30",
            "--seed",
            "2",
            "--machines",
            "2",
            "--connect",
            &addr,
        ]))
        .unwrap_err();
        assert!(err.0.contains("fingerprint mismatch"), "{err}");

        // The matching twin still drains the server cleanly.
        let out = run(&s(&[
            "loadgen",
            "--jobs",
            "30",
            "--seed",
            "1",
            "--machines",
            "2",
            "--connect",
            &addr,
        ]))
        .unwrap();
        assert!(out.contains("fault log verified OK"), "{out}");
        server.join().unwrap().unwrap();
    }

    #[test]
    fn serve_listen_multi_tenant_flags() {
        let trace_path = tmp("net_tenant_trace.csv");
        let port_file = tmp("net_tenant_port.txt");
        let _ = std::fs::remove_file(&port_file);
        run(&s(&[
            "generate",
            "--jobs",
            "20",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let server = {
            let trace = trace_path.to_str().unwrap().to_string();
            let port_file = port_file.to_str().unwrap().to_string();
            std::thread::spawn(move || {
                run(&s(&[
                    "serve",
                    "--trace",
                    &trace,
                    "--algo",
                    "pq-wsjf",
                    "--machines",
                    "2",
                    "--tenants",
                    "alpha:tok-a:3.0,beta:tok-b:1.0",
                    "--listen",
                    "127.0.0.1:0",
                    "--port-file",
                    &port_file,
                ]))
            })
        };
        let addr = wait_for_port_file(&port_file);

        // A wrong token is refused at the handshake.
        let err = run(&s(&[
            "client",
            "stats",
            "--connect",
            &addr,
            "--token",
            "wrong",
        ]))
        .unwrap_err();
        assert!(err.0.contains("authentication failed"), "{err}");

        let out = run(&s(&[
            "client",
            "submit",
            "--connect",
            &addr,
            "--trace",
            trace_path.to_str().unwrap(),
            "--token",
            "tok-b",
        ]))
        .unwrap();
        assert!(out.contains("as tenant 1"), "{out}");

        let out = run(&s(&[
            "client",
            "drain",
            "--connect",
            &addr,
            "--token",
            "tok-a",
        ]))
        .unwrap();
        assert!(
            out.contains("tenant beta (weight 1): admitted = 20"),
            "{out}"
        );
        let server_out = server.join().unwrap().unwrap();
        assert!(server_out.contains("2 tenants"), "{server_out}");
    }

    #[test]
    fn tenant_flag_parse_errors_are_typed() {
        let err = run(&s(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--trace",
            "/nonexistent",
            "--tenants",
            "missing-fields",
        ]))
        .unwrap_err();
        // Trace load fails first; tenants parse is exercised directly.
        assert!(err.0.contains("cannot read"), "{err}");
        let flags = Flags::parse(&s(&["--tenants", "a:b"])).unwrap();
        let err = tenants_from_flags(&flags).unwrap_err();
        assert!(err.0.contains("name:token:weight"), "{err}");
        let flags = Flags::parse(&s(&["--tenants", "a:b:heavy"])).unwrap();
        let err = tenants_from_flags(&flags).unwrap_err();
        assert!(err.0.contains("weight"), "{err}");
    }
}
