//! `mris` — the command-line front end. See `mris help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mris_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
