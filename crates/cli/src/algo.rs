//! Algorithm registry: name → scheduler.

use mris_core::{KnapsackChoice, Mris, MrisConfig};
use mris_schedulers::{BfExec, CaPq, Pq, Scheduler, SortHeuristic, Tetris};

/// Names accepted by [`algorithm_by_name`], with a short description each.
pub fn known_algorithms() -> Vec<(&'static str, &'static str)> {
    vec![
        ("mris", "MRIS with CADP knapsack and WSJF order (the paper's default)"),
        ("mris-greedy", "MRIS with the Remark 1 constraint greedy (16R-competitive)"),
        ("mris-<heuristic>", "MRIS with another queue order, e.g. mris-wsvf"),
        ("pq-<heuristic>", "Priority-Queue, e.g. pq-wsjf, pq-svf, pq-erf"),
        ("tetris", "non-preemptive Tetris adaptation"),
        ("bf-exec", "BF-EXEC (best fit on arrival, SJF backfill on departure)"),
        ("ca-pq", "Collect-All PQ (waits for the last release, then WSJF)"),
    ]
}

/// Resolves an algorithm name (case-insensitive). Heuristic suffixes accept
/// every [`SortHeuristic`] label, e.g. `pq-wsvf` or `mris-sjf`.
pub fn algorithm_by_name(name: &str) -> Result<Box<dyn Scheduler>, String> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "mris" => return Ok(Box::new(Mris::default())),
        "mris-greedy" => {
            return Ok(Box::new(Mris::with_config(MrisConfig {
                knapsack: KnapsackChoice::Greedy,
                ..Default::default()
            })))
        }
        "tetris" => return Ok(Box::new(Tetris::default())),
        "bf-exec" | "bfexec" => return Ok(Box::new(BfExec)),
        "ca-pq" | "capq" => return Ok(Box::new(CaPq::default())),
        _ => {}
    }
    if let Some(suffix) = lower.strip_prefix("pq-") {
        let heuristic: SortHeuristic = suffix.parse()?;
        return Ok(Box::new(Pq::new(heuristic)));
    }
    if let Some(suffix) = lower.strip_prefix("mris-") {
        let heuristic: SortHeuristic = suffix.parse()?;
        return Ok(Box::new(Mris::with_config(MrisConfig {
            heuristic,
            ..Default::default()
        })));
    }
    Err(format!(
        "unknown algorithm '{name}'; known: {}",
        known_algorithms()
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(", ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_all_documented_names() {
        for name in ["mris", "mris-greedy", "tetris", "bf-exec", "ca-pq"] {
            assert!(algorithm_by_name(name).is_ok(), "{name}");
        }
        assert_eq!(algorithm_by_name("pq-wsjf").unwrap().name(), "PQ-WSJF");
        assert_eq!(algorithm_by_name("PQ-SVF").unwrap().name(), "PQ-SVF");
        assert_eq!(algorithm_by_name("mris-erf").unwrap().name(), "MRIS-ERF");
    }

    #[test]
    fn rejects_unknown_names() {
        assert!(algorithm_by_name("sjf-first").is_err());
        assert!(algorithm_by_name("pq-nope").is_err());
    }

    #[test]
    fn every_heuristic_suffix_resolves() {
        use mris_schedulers::SortHeuristic;
        for h in SortHeuristic::ALL_EXTENDED {
            let pq = algorithm_by_name(&format!("pq-{}", h.label())).unwrap();
            assert_eq!(pq.name(), format!("PQ-{h}"));
            let mris = algorithm_by_name(&format!("mris-{}", h.label())).unwrap();
            assert_eq!(mris.name(), format!("MRIS-{h}"));
        }
    }

    #[test]
    fn error_lists_known_algorithms() {
        let err = algorithm_by_name("whatever").err().expect("must fail");
        assert!(err.contains("mris") && err.contains("tetris"), "{err}");
    }
}
