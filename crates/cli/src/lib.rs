//! Library backing the `mris` command-line tool.
//!
//! Subcommands:
//!
//! * `mris generate` — write an Azure-like synthetic trace to CSV.
//! * `mris schedule` — schedule a CSV trace with any algorithm in the
//!   library and write the resulting assignments to CSV.
//! * `mris compare` — run several algorithms on a trace and print an
//!   AWCT/makespan/delay comparison table.
//! * `mris validate` — check a schedule CSV against its trace for
//!   feasibility and report its objective values.
//! * `mris chaos` — replay a fault plan (machine failures + repairs)
//!   against each algorithm and report AWCT inflation.
//! * `mris serve` — run a trace through the `mris-service` daemon loop
//!   (admission control, epoch batching, JSONL telemetry), optionally
//!   journaling every state-mutating event (`--journal`) and writing
//!   periodic snapshots (`--snapshot-dir`).
//! * `mris restore` — rebuild a crashed `serve` from its journal (and
//!   optional snapshot), finish the run, and report both the replay and
//!   the final summary.
//! * `mris loadgen` — synthesize an open-loop arrival stream (Poisson or
//!   bursts), optionally replay a fault plan against the live service,
//!   and report the drained summary.
//!
//! The logic lives here (testable); `main.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commands;
mod schedule_io;

pub use commands::{run, CliError};
pub use mris_core::registry::{algorithm_by_name, known_algorithms};
pub use schedule_io::{parse_schedule_csv, schedule_to_csv};
