//! CSV serialization of schedules (`job,machine,start` rows).

use mris_types::{JobId, Schedule};

/// Serializes a schedule as `job,machine,start` CSV with a header.
pub fn schedule_to_csv(schedule: &Schedule) -> String {
    let mut out = String::from("job,machine,start\n");
    for a in schedule.assignments() {
        out.push_str(&format!("{},{},{}\n", a.job.0, a.machine, a.start));
    }
    out
}

/// Parses a schedule CSV produced by [`schedule_to_csv`] (header optional).
/// `num_jobs` and `num_machines` size the schedule; missing jobs stay
/// unassigned (validation will flag them).
pub fn parse_schedule_csv(
    text: &str,
    num_jobs: usize,
    num_machines: usize,
) -> Result<Schedule, String> {
    let mut schedule = Schedule::new(num_jobs, num_machines);
    let mut seen_data = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if !seen_data && fields[0].parse::<u32>().is_err() {
            continue; // header (possibly after leading comment lines)
        }
        seen_data = true;
        if fields.len() != 3 {
            return Err(format!("line {}: expected 3 fields", lineno + 1));
        }
        let job: u32 = fields[0]
            .parse()
            .map_err(|e| format!("line {}: job: {e}", lineno + 1))?;
        let machine: usize = fields[1]
            .parse()
            .map_err(|e| format!("line {}: machine: {e}", lineno + 1))?;
        let start: f64 = fields[2]
            .parse()
            .map_err(|e| format!("line {}: start: {e}", lineno + 1))?;
        schedule
            .assign(JobId(job), machine, start)
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut s = Schedule::new(3, 2);
        s.assign(JobId(0), 1, 2.5).unwrap();
        s.assign(JobId(1), 0, 0.0).unwrap();
        s.assign(JobId(2), 1, 7.25).unwrap();
        let csv = schedule_to_csv(&s);
        let back = parse_schedule_csv(&csv, 3, 2).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_double_assignment_and_bad_fields() {
        assert!(parse_schedule_csv("0,0,1.0\n0,1,2.0\n", 2, 2).is_err());
        assert!(parse_schedule_csv("0,0\n", 1, 1).is_err());
        assert!(parse_schedule_csv("0,zero,1\n", 1, 1).is_err());
    }

    #[test]
    fn header_and_comments_skipped() {
        let s = parse_schedule_csv("job,machine,start\n# c\n0,0,1.0\n", 1, 1).unwrap();
        assert_eq!(s.get(JobId(0)).unwrap().start, 1.0);
    }
}
