//! Brute-force knapsack oracle for testing (exponential; `n <= 25`).

use crate::{Item, Solution};

/// Exhaustively finds an optimal selection at `capacity`. Ties are broken
/// toward smaller total size, then lexicographically smaller index sets.
/// Panics if `items.len() > 25`.
pub fn brute_force(items: &[Item], capacity: f64) -> Solution {
    assert!(items.len() <= 25, "brute force limited to 25 items");
    let n = items.len();
    let mut best_mask = 0usize;
    let mut best_weight = 0.0;
    let mut best_size = 0.0;
    for mask in 0..(1usize << n) {
        let mut weight = 0.0;
        let mut size = 0.0;
        for (i, item) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                weight += item.weight;
                size += item.size;
            }
        }
        if size <= capacity + 1e-12
            && (weight > best_weight + 1e-12
                || ((weight - best_weight).abs() <= 1e-12 && size < best_size - 1e-12))
        {
            best_mask = mask;
            best_weight = weight;
            best_size = size;
        }
    }
    let selected = (0..n).filter(|i| best_mask & (1 << i) != 0).collect();
    Solution {
        selected,
        weight: best_weight,
        size: best_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_optimum() {
        let items = vec![
            Item::new(60.0, 5.0),
            Item::new(50.0, 4.0),
            Item::new(40.0, 6.0),
            Item::new(10.0, 3.0),
        ];
        let sol = brute_force(&items, 10.0);
        assert_eq!(sol.selected, vec![0, 1]);
        assert_eq!(sol.weight, 110.0);
    }

    #[test]
    fn empty_input_gives_empty_solution() {
        let sol = brute_force(&[], 10.0);
        assert!(sol.selected.is_empty());
        assert_eq!(sol.weight, 0.0);
    }
}
