//! Greedy knapsack solvers (Remark 1 of the paper).
//!
//! Both sort items by non-increasing density `w_j / v_j` and take the prefix
//! that fits. They differ in how they treat the first item `k` that does not
//! fit:
//!
//! * [`GreedyHalf`] outputs the better of `{1..k-1}` and `{k}` — the classic
//!   1/2-approximation that *respects* the capacity.
//! * [`GreedyConstraint`] outputs `{1..k-1} ∪ {k}` — at least the optimal
//!   weight (it dominates the fractional relaxation) using at most twice the
//!   capacity. This is the `O(n log n)` subroutine behind `MRIS-GREEDY`.

use crate::{assert_valid_items, Item, KnapsackSolver, Solution, SolveScratch};

/// Fills `order` with indices sorted by non-increasing density
/// `weight / size`; zero-size items (infinite density) first, zero-weight
/// items excluded entirely.
fn density_order_into(items: &[Item], order: &mut Vec<usize>) {
    order.clear();
    order.extend((0..items.len()).filter(|&i| items[i].weight > 0.0));
    order.sort_by(|&a, &b| {
        let da = density(items[a]);
        let db = density(items[b]);
        db.total_cmp(&da).then(a.cmp(&b))
    });
}

fn density(item: Item) -> f64 {
    if item.size == 0.0 {
        f64::INFINITY
    } else {
        item.weight / item.size
    }
}

/// The greedy prefix: items taken while they fit, plus (separately) the first
/// item that failed to fit, restricted to items that individually fit.
/// `scratch.indices` holds the density order for the duration of the call.
fn greedy_prefix(
    scratch: &mut SolveScratch,
    items: &[Item],
    capacity: f64,
) -> (Vec<usize>, Option<usize>) {
    density_order_into(items, &mut scratch.indices);
    let mut taken = Vec::new();
    let mut used = 0.0;
    for &i in &scratch.indices {
        if items[i].size > capacity {
            // Items larger than the whole knapsack cannot be part of any
            // optimal (capacity-respecting) solution; skipping them keeps the
            // constraint variant within 2 * capacity.
            continue;
        }
        if used + items[i].size <= capacity {
            used += items[i].size;
            taken.push(i);
        } else {
            return (taken, Some(i));
        }
    }
    (taken, None)
}

/// Classic density greedy: better of the fitting prefix or the single
/// overflowing item. Respects the capacity; guarantees at least half the
/// optimal weight.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyHalf;

impl KnapsackSolver for GreedyHalf {
    fn name(&self) -> &'static str {
        "greedy-half"
    }

    fn solve_into(&self, scratch: &mut SolveScratch, items: &[Item], capacity: f64) -> Solution {
        assert_valid_items(items);
        crate::record_solve(self.name(), items.len());
        if capacity < 0.0 {
            return Solution::empty();
        }
        let (prefix, overflow) = greedy_prefix(scratch, items, capacity);
        let prefix_sol = Solution::from_selected(items, prefix);
        match overflow {
            Some(k) if items[k].weight > prefix_sol.weight => {
                Solution::from_selected(items, vec![k])
            }
            _ => prefix_sol,
        }
    }

    fn capacity_blowup(&self) -> f64 {
        1.0
    }
}

/// Constraint-approximate greedy (Remark 1): fitting prefix *plus* the first
/// overflowing item. Weight at least the optimum at `capacity`; size at most
/// `2 * capacity`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyConstraint;

impl KnapsackSolver for GreedyConstraint {
    fn name(&self) -> &'static str {
        "greedy-constraint"
    }

    fn solve_into(&self, scratch: &mut SolveScratch, items: &[Item], capacity: f64) -> Solution {
        assert_valid_items(items);
        crate::record_solve(self.name(), items.len());
        if capacity < 0.0 {
            return Solution::empty();
        }
        let (mut prefix, overflow) = greedy_prefix(scratch, items, capacity);
        if let Some(k) = overflow {
            prefix.push(k);
        }
        Solution::from_selected(items, prefix)
    }

    fn capacity_blowup(&self) -> f64 {
        2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::ExactDp;

    fn items_from(pairs: &[(f64, f64)]) -> Vec<Item> {
        pairs.iter().map(|&(w, s)| Item::new(w, s)).collect()
    }

    #[test]
    fn constraint_greedy_reaches_optimum_within_double_capacity() {
        let items = items_from(&[(60.0, 5.0), (50.0, 4.0), (40.0, 6.0), (10.0, 3.0)]);
        let sol = GreedyConstraint.solve(&items, 10.0);
        let exact = ExactDp { resolution: 64.0 }.solve(&items, 10.0);
        assert!(sol.weight >= exact.weight - 1e-9);
        assert!(sol.size <= 20.0 + 1e-9);
    }

    #[test]
    fn half_greedy_respects_capacity() {
        let items = items_from(&[(60.0, 5.0), (50.0, 4.0), (40.0, 6.0), (10.0, 3.0)]);
        let sol = GreedyHalf.solve(&items, 10.0);
        assert!(sol.size <= 10.0 + 1e-9);
        let exact = ExactDp { resolution: 64.0 }.solve(&items, 10.0);
        assert!(sol.weight >= exact.weight / 2.0 - 1e-9);
    }

    #[test]
    fn half_greedy_prefers_big_single_item() {
        // Prefix takes the dense small item (w 2, s 1); the big item (w 100,
        // s 10) overflows but is worth more alone.
        let items = items_from(&[(2.0, 1.0), (100.0, 10.0)]);
        let sol = GreedyHalf.solve(&items, 10.0);
        assert_eq!(sol.selected, vec![1]);
    }

    #[test]
    fn zero_size_items_always_taken() {
        let items = items_from(&[(1.0, 0.0), (5.0, 2.0)]);
        for solver in [&GreedyHalf as &dyn KnapsackSolver, &GreedyConstraint] {
            let sol = solver.solve(&items, 1.0);
            assert!(sol.selected.contains(&0), "{}", solver.name());
        }
    }

    #[test]
    fn items_larger_than_capacity_are_skipped() {
        let items = items_from(&[(100.0, 5.0), (1.0, 1.0)]);
        let sol = GreedyConstraint.solve(&items, 2.0);
        // The oversized item can't appear; only the small one.
        assert_eq!(sol.selected, vec![1]);
        assert!(sol.size <= 4.0);
    }

    #[test]
    fn zero_weight_items_never_taken() {
        let items = items_from(&[(0.0, 0.0), (1.0, 1.0)]);
        let sol = GreedyConstraint.solve(&items, 10.0);
        assert_eq!(sol.selected, vec![1]);
    }

    #[test]
    fn empty_and_negative_capacity() {
        assert_eq!(GreedyHalf.solve(&[], 1.0), Solution::empty());
        let items = items_from(&[(1.0, 1.0)]);
        assert_eq!(GreedyConstraint.solve(&items, -1.0), Solution::empty());
    }
}
