//! Knapsack subroutines for MRIS (Sections 5.1 and 6.1 of the paper).
//!
//! MRIS selects, in every iteration `k`, a maximum-weight subset of pending
//! jobs whose total *volume* fits a knapsack capacity `zeta_k = R*M*gamma_k`
//! (problem **P1**). Because MRIS must match the optimal scheduler's weight
//! exactly (not a fraction of it), it uses **constraint approximation**: the
//! solver may exceed the capacity by a bounded factor but must reach at least
//! the optimal weight at the *original* capacity.
//!
//! Three solvers are provided:
//!
//! * [`Cadp`] — Constraint-Approximate Dynamic Programming (Lemma 6.1):
//!   optimal weight, size at most `(1 + eps) * capacity`, fully polynomial
//!   `O(n^2 / eps)` time.
//! * [`GreedyConstraint`] — the Remark 1 greedy: optimal weight, size at most
//!   `2 * capacity`, `O(n log n)` time. Used by `MRIS-GREEDY` in Figure 2.
//! * [`GreedyHalf`] — the classic capacity-respecting greedy, a
//!   1/2-approximation to the weight. Not usable inside MRIS's analysis (it
//!   can fall short of the optimal weight) but included as a baseline.
//!
//! [`ExactDp`] solves the integer-size knapsack exactly (pseudo-polynomial)
//! and backs both [`Cadp`] and the test oracles. Solution reconstruction uses
//! a Hirschberg-style divide-and-conquer, so memory stays `O(capacity)` while
//! time at most doubles versus the value-only recurrence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brute;
mod cadp;
mod dp;
mod greedy;

pub use brute::brute_force;
pub use cadp::Cadp;
pub use dp::{max_weight_integer, solve_integer, ExactDp};
pub use greedy::{GreedyConstraint, GreedyHalf};

/// A knapsack item: MRIS maps job `j` to `weight = w_j`, `size = v_j`
/// (volume). Weights and sizes must be finite and non-negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// The profit of selecting this item.
    pub weight: f64,
    /// The capacity the item consumes.
    pub size: f64,
}

impl Item {
    /// Convenience constructor.
    pub fn new(weight: f64, size: f64) -> Self {
        Item { weight, size }
    }
}

/// The outcome of a knapsack solve: which items were picked and their totals.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Indices into the input item slice, strictly increasing.
    pub selected: Vec<usize>,
    /// Sum of selected weights.
    pub weight: f64,
    /// Sum of selected sizes.
    pub size: f64,
}

impl Solution {
    /// Builds a solution from item indices, enforcing the sorted invariant
    /// of `selected` (sorts, dedups, and sums weight/size).
    pub fn from_selected(items: &[Item], mut selected: Vec<usize>) -> Self {
        selected.sort_unstable();
        selected.dedup();
        let weight = selected.iter().map(|&i| items[i].weight).sum();
        let size = selected.iter().map(|&i| items[i].size).sum();
        Solution {
            selected,
            weight,
            size,
        }
    }

    /// An empty selection.
    pub fn empty() -> Self {
        Solution {
            selected: Vec::new(),
            weight: 0.0,
            size: 0.0,
        }
    }
}

/// Reusable scratch buffers for [`KnapsackSolver::solve_into`].
///
/// Every solver needs a handful of `O(n)` temporaries per solve — scaled
/// integer sizes, extracted weights, a density-sorted index order. A caller
/// that solves once per scheduling epoch can hold one `SolveScratch` for the
/// lifetime of the run and amortize those allocations away; the only
/// per-solve allocation left is the (batch-sized) `selected` vector inside
/// the returned [`Solution`].
///
/// The buffers carry **no state between solves**: every `solve_into`
/// implementation fully re-initializes whatever it uses, so a scratch can be
/// shared freely across solvers and capacities.
#[derive(Debug, Default)]
pub struct SolveScratch {
    /// Integer-scaled item sizes (DP-based solvers).
    pub(crate) sizes: Vec<u64>,
    /// Extracted item weights (DP-based solvers).
    pub(crate) weights: Vec<f64>,
    /// Index staging: density order for the greedies, raw DP selection for
    /// the exact solvers.
    pub(crate) indices: Vec<usize>,
}

/// A 0/1-knapsack solver over real-valued sizes.
///
/// Implementations document their guarantee as a relation between the
/// returned solution and the optimum at `capacity`: exact solvers respect the
/// capacity; *constraint-approximate* solvers ([`Cadp`], [`GreedyConstraint`])
/// guarantee `solution.weight >= OPT(capacity)` while allowing
/// `solution.size` up to their documented blow-up factor times `capacity`.
///
/// **Contract:** `Solution::selected` must be **strictly increasing** (and
/// therefore duplicate-free). Callers rely on this — MRIS's zero-weight
/// folding binary-searches the selection — so custom implementations should
/// construct results via [`Solution::from_selected`], which sorts and
/// dedups. The MRIS call site re-checks the invariant in debug builds.
pub trait KnapsackSolver {
    /// A short human-readable solver name for reports.
    fn name(&self) -> &'static str;

    /// Selects a subset of `items` for the given `capacity`, drawing all
    /// per-solve temporaries from `scratch`. Results are independent of the
    /// scratch's prior contents.
    fn solve_into(&self, scratch: &mut SolveScratch, items: &[Item], capacity: f64) -> Solution;

    /// Convenience wrapper over [`KnapsackSolver::solve_into`] that allocates
    /// a fresh [`SolveScratch`] per call. Hot paths (one solve per epoch)
    /// should hold a scratch and call `solve_into` directly.
    fn solve(&self, items: &[Item], capacity: f64) -> Solution {
        self.solve_into(&mut SolveScratch::default(), items, capacity)
    }

    /// The factor `c` such that the returned size is guaranteed at most
    /// `c * capacity` (1.0 for exact solvers, `1 + eps` for CADP, 2.0 for the
    /// constraint greedy).
    fn capacity_blowup(&self) -> f64;
}

/// Records one solver invocation in the observability registry: a per-solver
/// solve count and item count under the `mris_knapsack_*` families. One
/// relaxed atomic load each when no subscriber is installed.
pub(crate) fn record_solve(solver: &'static str, num_items: usize) {
    mris_obs::counter_add_labeled("mris_knapsack_solves_total", ("solver", solver), 1);
    mris_obs::counter_add_labeled(
        "mris_knapsack_items_total",
        ("solver", solver),
        num_items as u64,
    );
}

pub(crate) fn assert_valid_items(items: &[Item]) {
    for (i, item) in items.iter().enumerate() {
        assert!(
            item.weight.is_finite() && item.weight >= 0.0,
            "item {i} has invalid weight {}",
            item.weight
        );
        assert!(
            item.size.is_finite() && item.size >= 0.0,
            "item {i} has invalid size {}",
            item.size
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_from_selected_sorts_and_sums() {
        let items = [
            Item::new(1.0, 2.0),
            Item::new(3.0, 4.0),
            Item::new(5.0, 6.0),
        ];
        let s = Solution::from_selected(&items, vec![2, 0, 2]);
        assert_eq!(s.selected, vec![0, 2]);
        assert!((s.weight - 6.0).abs() < 1e-12);
        assert!((s.size - 8.0).abs() < 1e-12);
    }
}
