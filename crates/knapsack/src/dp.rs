//! Exact integer-size knapsack dynamic programming.
//!
//! The value-only recurrence uses a single `O(capacity)` array. Solution
//! reconstruction uses Hirschberg-style divide and conquer: split the items
//! in half, run a forward DP over the first half and a backward DP over the
//! second, find the capacity split that maximizes the combined value, and
//! recurse. Each recursion level does at most `n * capacity` array updates in
//! total, so the whole reconstruction costs at most twice the value-only DP
//! while never materializing the `n x capacity` choice matrix.

use crate::{assert_valid_items, Item, KnapsackSolver, Solution, SolveScratch};

/// Best achievable weight for each capacity `0..=cap`, considering
/// `items[lo..hi]`. `out` must have length `cap + 1` and is overwritten.
fn dp_values(sizes: &[u64], weights: &[f64], lo: usize, hi: usize, cap: u64, out: &mut [f64]) {
    debug_assert_eq!(out.len(), cap as usize + 1);
    out.fill(0.0);
    for i in lo..hi {
        let s = sizes[i] as usize;
        let w = weights[i];
        if s > cap as usize || w <= 0.0 {
            continue;
        }
        // Classic 0/1 downward scan so each item is used at most once.
        for c in (s..=cap as usize).rev() {
            let candidate = out[c - s] + w;
            if candidate > out[c] {
                out[c] = candidate;
            }
        }
    }
}

/// Reconstructs one optimal selection of `items[lo..hi]` at capacity `cap`
/// into `selected`, using divide and conquer.
fn dp_reconstruct(
    sizes: &[u64],
    weights: &[f64],
    lo: usize,
    hi: usize,
    cap: u64,
    selected: &mut Vec<usize>,
) {
    if lo >= hi || cap == 0 {
        // Zero-capacity subproblems can still take zero-size items.
        for i in lo..hi {
            if sizes[i] == 0 && weights[i] > 0.0 {
                selected.push(i);
            }
        }
        return;
    }
    if hi - lo == 1 {
        if sizes[lo] <= cap && weights[lo] > 0.0 {
            selected.push(lo);
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let mut left = vec![0.0; cap as usize + 1];
    let mut right = vec![0.0; cap as usize + 1];
    dp_values(sizes, weights, lo, mid, cap, &mut left);
    dp_values(sizes, weights, mid, hi, cap, &mut right);
    let mut best_c = 0usize;
    let mut best = f64::NEG_INFINITY;
    for c in 0..=cap as usize {
        let v = left[c] + right[cap as usize - c];
        if v > best {
            best = v;
            best_c = c;
        }
    }
    drop(left);
    drop(right);
    dp_reconstruct(sizes, weights, lo, mid, best_c as u64, selected);
    dp_reconstruct(sizes, weights, mid, hi, cap - best_c as u64, selected);
}

/// Solves the 0/1 knapsack with integer sizes exactly.
///
/// Returns the selected indices (strictly increasing) achieving the maximum
/// total weight subject to `sum(sizes[selected]) <= cap`. Runs in
/// `O(n * cap)` time (times two for reconstruction) and `O(cap)` memory.
///
/// Items with non-positive weight are never selected (selecting them cannot
/// increase the objective and only consumes capacity).
pub fn solve_integer(sizes: &[u64], weights: &[f64], cap: u64) -> Vec<usize> {
    assert_eq!(sizes.len(), weights.len());
    // Clamp the capacity to the total size: larger capacities are equivalent
    // and only waste DP columns.
    let total: u64 = sizes.iter().fold(0u64, |a, &b| a.saturating_add(b));
    let cap = cap.min(total);
    let mut selected = Vec::new();
    dp_reconstruct(sizes, weights, 0, sizes.len(), cap, &mut selected);
    selected.sort_unstable();
    selected
}

/// Best achievable total weight at integer capacity `cap` (value only).
pub fn max_weight_integer(sizes: &[u64], weights: &[f64], cap: u64) -> f64 {
    assert_eq!(sizes.len(), weights.len());
    let total: u64 = sizes.iter().fold(0u64, |a, &b| a.saturating_add(b));
    let cap = cap.min(total);
    let mut out = vec![0.0; cap as usize + 1];
    dp_values(sizes, weights, 0, sizes.len(), cap, &mut out);
    *out.last().unwrap()
}

/// Exact pseudo-polynomial knapsack over real sizes, via fixed-point scaling.
///
/// Real sizes are multiplied by `resolution` and rounded **up**; the capacity
/// is rounded **down**. Rounding in opposite directions keeps every returned
/// selection feasible at the true capacity, at the cost of possibly missing
/// solutions that only fit by less than one tick. With `resolution` large
/// relative to `1/min_gap` this is exact; it exists mainly as the test oracle
/// and for small instances — MRIS itself uses [`Cadp`](crate::Cadp).
#[derive(Debug, Clone, Copy)]
pub struct ExactDp {
    /// Ticks per unit of size. Default `1024.0`.
    pub resolution: f64,
}

impl Default for ExactDp {
    fn default() -> Self {
        ExactDp { resolution: 1024.0 }
    }
}

impl KnapsackSolver for ExactDp {
    fn name(&self) -> &'static str {
        "exact-dp"
    }

    fn solve_into(&self, scratch: &mut SolveScratch, items: &[Item], capacity: f64) -> Solution {
        assert_valid_items(items);
        crate::record_solve(self.name(), items.len());
        if items.is_empty() || capacity < 0.0 {
            return Solution::empty();
        }
        scratch.sizes.clear();
        scratch.sizes.extend(
            items
                .iter()
                .map(|it| (it.size * self.resolution).ceil() as u64),
        );
        scratch.weights.clear();
        scratch.weights.extend(items.iter().map(|it| it.weight));
        let cap = (capacity * self.resolution).floor().max(0.0) as u64;
        let selected = solve_integer(&scratch.sizes, &scratch.weights, cap);
        Solution::from_selected(items, selected)
    }

    fn capacity_blowup(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weight_of(selected: &[usize], weights: &[f64]) -> f64 {
        selected.iter().map(|&i| weights[i]).sum()
    }

    #[test]
    fn tiny_exact() {
        // Classic: capacity 10, items (w, s): (60,5) (50,4) (40,6) (10,3).
        let sizes = [5, 4, 6, 3];
        let weights = [60.0, 50.0, 40.0, 10.0];
        let sel = solve_integer(&sizes, &weights, 10);
        assert_eq!(sel, vec![0, 1]);
        assert_eq!(max_weight_integer(&sizes, &weights, 10), 110.0);
    }

    #[test]
    fn zero_capacity_takes_only_zero_size() {
        let sizes = [0, 1, 0];
        let weights = [5.0, 9.0, 0.0];
        let sel = solve_integer(&sizes, &weights, 0);
        // Item 2 has zero weight: not selected.
        assert_eq!(sel, vec![0]);
    }

    #[test]
    fn capacity_above_total_takes_all_positive() {
        let sizes = [3, 4, 5];
        let weights = [1.0, 0.0, 2.0];
        let sel = solve_integer(&sizes, &weights, 1_000_000);
        assert_eq!(sel, vec![0, 2]);
    }

    #[test]
    fn reconstruction_matches_value_dp() {
        // Deterministic pseudo-random instance; checks the Hirschberg
        // reconstruction returns a selection achieving the value-DP optimum
        // and respecting the capacity.
        let mut state = 0x243F6A88u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for trial in 0..30 {
            let n = 1 + (next() % 40) as usize;
            let sizes: Vec<u64> = (0..n).map(|_| next() % 50).collect();
            let weights: Vec<f64> = (0..n).map(|_| (next() % 100) as f64).collect();
            let cap = next() % 300;
            let sel = solve_integer(&sizes, &weights, cap);
            let total_size: u64 = sel.iter().map(|&i| sizes[i]).sum();
            assert!(total_size <= cap.min(sizes.iter().sum()), "trial {trial}");
            let got = weight_of(&sel, &weights);
            let want = max_weight_integer(&sizes, &weights, cap);
            assert!((got - want).abs() < 1e-9, "trial {trial}: {got} vs {want}");
        }
    }

    #[test]
    fn exact_dp_trait_respects_capacity() {
        let items = vec![
            Item::new(60.0, 0.5),
            Item::new(50.0, 0.4),
            Item::new(40.0, 0.6),
        ];
        let sol = ExactDp::default().solve(&items, 1.0);
        assert!(sol.size <= 1.0 + 1e-9);
        assert_eq!(sol.selected, vec![0, 1]);
    }

    #[test]
    fn empty_items() {
        assert_eq!(ExactDp::default().solve(&[], 5.0), Solution::empty());
        assert!(solve_integer(&[], &[], 5).is_empty());
    }
}
