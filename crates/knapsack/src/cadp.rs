//! CADP: Constraint-Approximate Dynamic Programming (Section 5.1, Lemma 6.1).
//!
//! Modifies Ibarra & Kim's FPTAS to approximate the *constraint* instead of
//! the objective: item sizes are scaled by `K = eps * capacity / n` and
//! rounded **down**, then the scaled instance is solved exactly at capacity
//! `floor(capacity / K) = floor(n / eps)`. Because weights are untouched and
//! the scaled DP is exact, the returned weight is at least the optimum at the
//! original capacity; because each item's rounding error is below `K`, the
//! total size overshoot is below `n * K = eps * capacity` (Lemma 6.1).
//!
//! Note the paper's Section 5.1 text sets `K = zeta * n / eps`, which is a
//! typo: its own Lemma 6.1 proof requires `n * K = eps * zeta`, i.e.
//! `K = eps * zeta / n`, which is what we implement.

use crate::dp::solve_integer;
use crate::{assert_valid_items, Item, KnapsackSolver, Solution, SolveScratch};

/// The CADP solver: optimal weight at `capacity`, returned size at most
/// `(1 + epsilon) * capacity`, running time `O(n^2 / epsilon)`.
#[derive(Debug, Clone, Copy)]
pub struct Cadp {
    /// The constraint-approximation parameter `0 < eps < 1`.
    pub epsilon: f64,
}

impl Cadp {
    /// Creates a CADP solver. Panics unless `0 < epsilon < 1` (the range
    /// Lemma 6.5 requires).
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "CADP requires 0 < epsilon < 1, got {epsilon}"
        );
        Cadp { epsilon }
    }
}

impl Default for Cadp {
    /// `epsilon = 0.5`, the value used in the trace-driven evaluation.
    fn default() -> Self {
        Cadp::new(0.5)
    }
}

impl KnapsackSolver for Cadp {
    fn name(&self) -> &'static str {
        "cadp"
    }

    fn solve_into(&self, scratch: &mut SolveScratch, items: &[Item], capacity: f64) -> Solution {
        assert_valid_items(items);
        crate::record_solve(self.name(), items.len());
        mris_obs::gauge_set("mris_knapsack_epsilon", self.epsilon);
        let n = items.len();
        if n == 0 {
            return Solution::empty();
        }
        if capacity <= 0.0 {
            // Only size-zero items can be in any optimal solution.
            let selected = (0..n)
                .filter(|&i| items[i].size == 0.0 && items[i].weight > 0.0)
                .collect();
            return Solution::from_selected(items, selected);
        }
        // Fast path: everything fits — the optimum takes every positive item.
        let total_size: f64 = items.iter().map(|it| it.size).sum();
        if total_size <= capacity {
            let selected = (0..n).filter(|&i| items[i].weight > 0.0).collect();
            return Solution::from_selected(items, selected);
        }
        let k = self.epsilon * capacity / n as f64;
        let scaled_cap = (capacity / k).floor() as u64; // = floor(n / eps)
        scratch.sizes.clear();
        scratch
            .sizes
            .extend(items.iter().map(|it| (it.size / k).floor() as u64));
        scratch.weights.clear();
        scratch.weights.extend(items.iter().map(|it| it.weight));
        let selected = solve_integer(&scratch.sizes, &scratch.weights, scaled_cap);
        Solution::from_selected(items, selected)
    }

    fn capacity_blowup(&self) -> f64 {
        1.0 + self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::ExactDp;

    fn items_from(pairs: &[(f64, f64)]) -> Vec<Item> {
        pairs.iter().map(|&(w, s)| Item::new(w, s)).collect()
    }

    #[test]
    fn matches_optimum_weight_small() {
        let items = items_from(&[(60.0, 5.0), (50.0, 4.0), (40.0, 6.0), (10.0, 3.0)]);
        let cadp = Cadp::new(0.3);
        let sol = cadp.solve(&items, 10.0);
        let exact = ExactDp { resolution: 64.0 }.solve(&items, 10.0);
        assert!(sol.weight >= exact.weight - 1e-9);
        assert!(sol.size <= (1.0 + 0.3) * 10.0 + 1e-9);
    }

    #[test]
    fn fast_path_when_everything_fits() {
        let items = items_from(&[(1.0, 1.0), (0.0, 1.0), (2.0, 1.0)]);
        let sol = Cadp::default().solve(&items, 10.0);
        assert_eq!(sol.selected, vec![0, 2]);
    }

    #[test]
    fn zero_capacity_selects_zero_size_items() {
        let items = items_from(&[(1.0, 0.0), (5.0, 0.1), (2.0, 0.0)]);
        let sol = Cadp::default().solve(&items, 0.0);
        assert_eq!(sol.selected, vec![0, 2]);
        assert_eq!(sol.size, 0.0);
    }

    #[test]
    fn oversized_items_stay_within_blowup() {
        // One item bigger than the capacity; constraint approximation may
        // take it but must stay within (1 + eps) * capacity overall.
        let items = items_from(&[(100.0, 1.4), (1.0, 0.5)]);
        let cadp = Cadp::new(0.5);
        let sol = cadp.solve(&items, 1.0);
        assert!(sol.size <= 1.5 + 1e-9);
        // Optimum at capacity 1.0 is the small item (weight 1); CADP must
        // reach at least that.
        assert!(sol.weight >= 1.0);
    }

    #[test]
    #[should_panic(expected = "CADP requires")]
    fn rejects_bad_epsilon() {
        let _ = Cadp::new(1.0);
    }

    #[test]
    fn empty_input() {
        assert_eq!(Cadp::default().solve(&[], 3.0), Solution::empty());
    }
}
