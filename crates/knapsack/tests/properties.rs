//! Property-based tests pinning the paper's knapsack guarantees
//! (Lemma 6.1 and Remark 1) against a brute-force oracle.

use mris_knapsack::{brute_force, Cadp, GreedyConstraint, GreedyHalf, Item, KnapsackSolver};
use mris_rng::prop::{check, Config};
use mris_rng::{prop_assert, Rng};

fn gen_items(rng: &mut Rng) -> Vec<Item> {
    let n = rng.gen_range(0..12usize);
    (0..n)
        .map(|_| Item::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..10.0)))
        .collect()
}

fn gen_capacity(rng: &mut Rng) -> f64 {
    rng.gen_range(0.0..30.0)
}

/// Lemma 6.1: CADP reaches at least the optimal weight at the original
/// capacity and uses at most (1 + eps) times the capacity.
#[test]
fn cadp_constraint_approximation() {
    check(
        "cadp constraint approximation",
        &Config::with_cases(256),
        |rng| (gen_items(rng), gen_capacity(rng), rng.gen_range(0.05..0.95)),
        |(items, cap, eps)| {
            let opt = brute_force(items, *cap);
            let sol = Cadp::new(*eps).solve(items, *cap);
            prop_assert!(
                sol.weight >= opt.weight - 1e-6,
                "CADP weight {} below optimum {}",
                sol.weight,
                opt.weight
            );
            prop_assert!(
                sol.size <= (1.0 + eps) * cap + 1e-6,
                "CADP size {} exceeds (1+{eps}) * {cap}",
                sol.size
            );
            Ok(())
        },
    );
}

/// Remark 1: the constraint greedy reaches the optimal weight within
/// twice the capacity.
#[test]
fn greedy_constraint_approximation() {
    check(
        "greedy constraint approximation",
        &Config::with_cases(256),
        |rng| (gen_items(rng), gen_capacity(rng)),
        |(items, cap)| {
            let opt = brute_force(items, *cap);
            let sol = GreedyConstraint.solve(items, *cap);
            prop_assert!(sol.weight >= opt.weight - 1e-6);
            prop_assert!(sol.size <= 2.0 * cap + 1e-6);
            Ok(())
        },
    );
}

/// The classic greedy is a capacity-respecting 1/2-approximation.
#[test]
fn greedy_half_approximation() {
    check(
        "greedy half approximation",
        &Config::with_cases(256),
        |rng| (gen_items(rng), gen_capacity(rng)),
        |(items, cap)| {
            let opt = brute_force(items, *cap);
            let sol = GreedyHalf.solve(items, *cap);
            prop_assert!(sol.size <= cap + 1e-6);
            prop_assert!(sol.weight >= opt.weight / 2.0 - 1e-6);
            Ok(())
        },
    );
}

/// The integer DP with divide-and-conquer reconstruction is exact.
#[test]
fn integer_dp_matches_brute_force() {
    check(
        "integer dp matches brute force",
        &Config::with_cases(256),
        |rng| {
            let n = rng.gen_range(0..12usize);
            let pairs: Vec<(u64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0..20u64), rng.gen_range(0.0..50.0)))
                .collect();
            (pairs, rng.gen_range(0..60u64))
        },
        |(pairs, cap)| {
            let sizes: Vec<u64> = pairs.iter().map(|p| p.0).collect();
            let items: Vec<Item> = pairs.iter().map(|&(s, w)| Item::new(w, s as f64)).collect();
            let sel = mris_knapsack::ExactDp { resolution: 1.0 }.solve(&items, *cap as f64);
            let opt = brute_force(&items, *cap as f64);
            prop_assert!(
                (sel.weight - opt.weight).abs() < 1e-6,
                "dp weight {} vs brute {}",
                sel.weight,
                opt.weight
            );
            let total: u64 = sel.selected.iter().map(|&i| sizes[i]).sum();
            prop_assert!(total <= *cap);
            Ok(())
        },
    );
}

/// CADP's solution weight is monotone in epsilon at fixed capacity:
/// more slack can never produce a worse weight than the exact optimum
/// (they all dominate it), and every epsilon respects its own blow-up.
#[test]
fn cadp_epsilon_spectrum() {
    check(
        "cadp epsilon spectrum",
        &Config::with_cases(256),
        |rng| (gen_items(rng), gen_capacity(rng)),
        |(items, cap)| {
            let opt = brute_force(items, *cap);
            for eps in [0.1, 0.3, 0.6, 0.9] {
                let sol = Cadp::new(eps).solve(items, *cap);
                prop_assert!(sol.weight >= opt.weight - 1e-6, "eps {eps}");
                prop_assert!(sol.size <= (1.0 + eps) * cap + 1e-6, "eps {eps}");
            }
            Ok(())
        },
    );
}

/// All solvers return strictly increasing, in-range index sets and
/// consistent weight/size sums.
#[test]
fn solutions_are_well_formed() {
    check(
        "solutions are well formed",
        &Config::with_cases(256),
        |rng| (gen_items(rng), gen_capacity(rng)),
        |(items, cap)| {
            for solver in [
                &Cadp::default() as &dyn KnapsackSolver,
                &GreedyConstraint,
                &GreedyHalf,
            ] {
                let sol = solver.solve(items, *cap);
                prop_assert!(sol.selected.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(sol.selected.iter().all(|&i| i < items.len()));
                let w: f64 = sol.selected.iter().map(|&i| items[i].weight).sum();
                let s: f64 = sol.selected.iter().map(|&i| items[i].size).sum();
                prop_assert!((w - sol.weight).abs() < 1e-9);
                prop_assert!((s - sol.size).abs() < 1e-9);
            }
            Ok(())
        },
    );
}

/// Hirschberg reconstruction stress: a large instance where the value-only
/// DP optimum must be met exactly by the reconstructed selection.
#[test]
fn divide_and_conquer_reconstruction_at_scale() {
    let mut state = 0xDEADBEEFu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let n = 3000;
    let sizes: Vec<u64> = (0..n).map(|_| next() % 40 + 1).collect();
    let weights: Vec<f64> = (0..n).map(|_| (next() % 1000) as f64).collect();
    let cap = sizes.iter().sum::<u64>() / 3;
    let selection = mris_knapsack::solve_integer(&sizes, &weights, cap);
    let total_size: u64 = selection.iter().map(|&i| sizes[i]).sum();
    assert!(total_size <= cap);
    let got: f64 = selection.iter().map(|&i| weights[i]).sum();
    let want = mris_knapsack::max_weight_integer(&sizes, &weights, cap);
    assert!((got - want).abs() < 1e-6, "{got} vs {want}");
}
