//! Incremental `EpochState` vs from-scratch rebuild equivalence.
//!
//! The incremental epoch state (monotone eligibility frontier + knapsack
//! memo + reused scratch) is a pure optimization: it must not change a
//! single placement. Pinned here, over randomized instances, for **all
//! four** knapsack solvers:
//!
//! 1. Offline `Mris::schedule` with `force_epoch_rebuild` (the reference
//!    path: flat job set, per-epoch threshold filter, memo bypassed) is
//!    bit-identical — schedules and AWCT bits — to the default incremental
//!    path.
//! 2. The same holds online, through the unified driver.
//! 3. Chaos composition: machine failures mid-epoch (which orphan
//!    committed jobs and invalidate the memo) leave the incremental path
//!    bit-identical to the rebuild path under the identical fault plan —
//!    schedules, AWCT bits, and audit logs.

use mris_core::{KnapsackChoice, Mris, MrisConfig, MrisOnline};
use mris_rng::prop::{check, Config};
use mris_rng::{prop_assert_eq, Rng};
use mris_schedulers::Scheduler;
use mris_sim::{run_online_chaos, FaultPlan};
use mris_types::{FaultEvent, FaultTarget, Instance, Job, JobId, RestartSemantics};

/// One generated job row: release, proc time, weight, demands.
type Row = (f64, f64, f64, Vec<f64>);

/// `(machines, resources, rows)`.
type Case = (usize, usize, Vec<Row>);

fn gen_case(rng: &mut Rng) -> Case {
    let r = rng.gen_range(1..=2usize);
    let n = rng.gen_range(2..=12usize);
    let rows = (0..n)
        .map(|_| {
            (
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.5..6.0),
                rng.gen_range(0.0..4.0),
                (0..r).map(|_| rng.gen_range(0.0..=1.0)).collect(),
            )
        })
        .collect();
    (rng.gen_range(1..=3usize), r, rows)
}

fn build_case(case: &Case) -> Option<(usize, Instance)> {
    let (machines, r, rows) = case;
    if rows.len() < 2 || !(1..=3).contains(machines) {
        return None;
    }
    let jobs = rows
        .iter()
        .map(|(rel, p, w, d)| Job::from_fractions(JobId(0), *rel, *p, *w, d))
        .collect();
    let instance = Instance::from_unnumbered(jobs, *r).ok()?;
    Some((*machines, instance))
}

fn config(knapsack: KnapsackChoice, force_epoch_rebuild: bool) -> MrisConfig {
    MrisConfig {
        knapsack,
        force_epoch_rebuild,
        ..Default::default()
    }
}

/// Offline and online, incremental vs rebuild, for one solver and case.
fn assert_equivalent(
    knapsack: KnapsackChoice,
    machines: usize,
    instance: &Instance,
) -> Result<(), String> {
    // Offline batch path.
    let incremental = Mris::with_config(config(knapsack, false)).schedule(instance, machines);
    let rebuilt = Mris::with_config(config(knapsack, true)).schedule(instance, machines);
    prop_assert_eq!(&incremental, &rebuilt, "offline schedules diverged");
    prop_assert_eq!(
        incremental.awct(instance).to_bits(),
        rebuilt.awct(instance).to_bits(),
        "offline AWCT bits diverged"
    );

    // Online path through the unified driver (fault-free).
    let plan = FaultPlan::none();
    let mut inc_policy = MrisOnline::new(config(knapsack, false), instance, machines);
    let mut reb_policy = MrisOnline::new(config(knapsack, true), instance, machines);
    let inc = run_online_chaos(
        instance,
        machines,
        &mut inc_policy,
        &plan,
        RestartSemantics::FullRestart,
    )
    .map_err(|e| format!("incremental online: {e}"))?;
    let reb = run_online_chaos(
        instance,
        machines,
        &mut reb_policy,
        &plan,
        RestartSemantics::FullRestart,
    )
    .map_err(|e| format!("rebuild online: {e}"))?;
    prop_assert_eq!(&inc.schedule, &reb.schedule, "online schedules diverged");
    prop_assert_eq!(
        inc.schedule.awct(instance).to_bits(),
        reb.schedule.awct(instance).to_bits(),
        "online AWCT bits diverged"
    );
    Ok(())
}

fn check_solver(knapsack: KnapsackChoice, name: &'static str) {
    check(name, &Config::with_cases(64), gen_case, |case| {
        let Some((machines, instance)) = build_case(case) else {
            return Ok(());
        };
        assert_equivalent(knapsack, machines, &instance)
    });
}

#[test]
fn incremental_matches_rebuild_cadp() {
    check_solver(KnapsackChoice::Cadp, "epoch equivalence (cadp)");
}

#[test]
fn incremental_matches_rebuild_greedy() {
    check_solver(KnapsackChoice::Greedy, "epoch equivalence (greedy)");
}

#[test]
fn incremental_matches_rebuild_greedy_half() {
    check_solver(
        KnapsackChoice::GreedyHalf,
        "epoch equivalence (greedy-half)",
    );
}

#[test]
fn incremental_matches_rebuild_exact() {
    check_solver(KnapsackChoice::Exact, "epoch equivalence (exact)");
}

/// Chaos composition: randomized fault plans (machine strikes that orphan
/// committed jobs and wipe the knapsack memo mid-epoch) must leave the
/// incremental path bit-identical to the rebuild path — schedules, AWCT
/// bits, and the full audit log.
#[test]
fn incremental_matches_rebuild_under_chaos() {
    check(
        "epoch equivalence under chaos",
        &Config::with_cases(64),
        |rng| {
            let case = gen_case(rng);
            let strikes = rng.gen_range(1..=3usize);
            let events: Vec<(f64, f64, usize)> = (0..strikes)
                .map(|_| {
                    (
                        rng.gen_range(0.0..20.0),
                        rng.gen_range(0.5..8.0),
                        rng.gen_range(0..4usize),
                    )
                })
                .collect();
            (case, events)
        },
        |(case, events)| {
            let Some((machines, instance)) = build_case(case) else {
                return Ok(());
            };
            let plan = FaultPlan::from_events(
                events
                    .iter()
                    .map(|&(at, downtime, m)| FaultEvent {
                        at,
                        downtime,
                        target: FaultTarget::Machine(m),
                    })
                    .collect(),
            );
            let mut inc_policy =
                MrisOnline::new(config(KnapsackChoice::Cadp, false), &instance, machines);
            let mut reb_policy =
                MrisOnline::new(config(KnapsackChoice::Cadp, true), &instance, machines);
            let inc = run_online_chaos(
                &instance,
                machines,
                &mut inc_policy,
                &plan,
                RestartSemantics::FullRestart,
            )
            .map_err(|e| format!("incremental chaos: {e}"))?;
            let reb = run_online_chaos(
                &instance,
                machines,
                &mut reb_policy,
                &plan,
                RestartSemantics::FullRestart,
            )
            .map_err(|e| format!("rebuild chaos: {e}"))?;
            prop_assert_eq!(&inc.schedule, &reb.schedule, "chaos schedules diverged");
            prop_assert_eq!(&inc.log, &reb.log, "chaos audit logs diverged");
            prop_assert_eq!(
                inc.schedule.awct(&instance).to_bits(),
                reb.schedule.awct(&instance).to_bits(),
                "chaos AWCT bits diverged"
            );
            Ok(())
        },
    );
}

/// A pinned mid-epoch failure: the strike lands between two grid wakeups,
/// after jobs have been committed ahead of wall-clock — exactly the
/// situation where stale memo entries would resurface if invalidation were
/// wrong.
#[test]
fn mid_epoch_failure_invalidates_memo() {
    let jobs = vec![
        Job::from_fractions(JobId(0), 0.0, 2.0, 3.0, &[0.6]),
        Job::from_fractions(JobId(1), 0.0, 2.0, 2.0, &[0.6]),
        Job::from_fractions(JobId(2), 0.5, 4.0, 1.0, &[0.5]),
        Job::from_fractions(JobId(3), 3.0, 1.0, 4.0, &[0.7]),
    ];
    let instance = Instance::from_unnumbered(jobs, 1).unwrap();
    let plan = FaultPlan::from_events(vec![FaultEvent {
        at: 3.0,
        downtime: 2.5,
        target: FaultTarget::Machine(0),
    }]);
    for machines in [1usize, 2] {
        let mut inc_policy =
            MrisOnline::new(config(KnapsackChoice::Cadp, false), &instance, machines);
        let mut reb_policy =
            MrisOnline::new(config(KnapsackChoice::Cadp, true), &instance, machines);
        let inc = run_online_chaos(
            &instance,
            machines,
            &mut inc_policy,
            &plan,
            RestartSemantics::FullRestart,
        )
        .unwrap();
        let reb = run_online_chaos(
            &instance,
            machines,
            &mut reb_policy,
            &plan,
            RestartSemantics::FullRestart,
        )
        .unwrap();
        assert_eq!(inc.schedule, reb.schedule, "M = {machines}");
        assert_eq!(inc.log, reb.log, "M = {machines}");
        assert!(inc.log.total_kills() > 0, "plan must actually strike");
    }
}

/// The recovery twin of the test above: the machine comes back between two
/// grid wakeups while jobs are still pending, so epochs plan against both
/// the degraded and the recovered cluster. `on_machine_recovered` now
/// wipes the knapsack memo exactly like the failure hook does; the
/// memoized path must stay bit-identical to the rebuild path across the
/// mid-epoch recovery (and keep matching through the epochs that follow
/// it).
#[test]
fn mid_epoch_recovery_invalidates_memo() {
    let jobs = vec![
        Job::from_fractions(JobId(0), 0.0, 1.5, 3.0, &[0.7]),
        Job::from_fractions(JobId(1), 0.0, 3.0, 2.0, &[0.6]),
        Job::from_fractions(JobId(2), 0.25, 2.0, 1.0, &[0.5]),
        Job::from_fractions(JobId(3), 3.5, 1.0, 4.0, &[0.8]),
        Job::from_fractions(JobId(4), 6.0, 2.0, 2.5, &[0.4]),
    ];
    let instance = Instance::from_unnumbered(jobs, 1).unwrap();
    // Strike at t = 2.5 (killing work placed at the gamma = 2 wakeup) and
    // recover at t = 4.2: both land strictly between grid wakeups
    // (gamma = 2, 4, 8), so the memo is wiped mid-epoch twice — once by
    // the failure hook, once by the recovery hook — and the job released
    // at t = 6.0 forces a post-recovery epoch that would replan against a
    // stale memo if the recovery hook forgot to invalidate.
    let plan = FaultPlan::from_events(vec![FaultEvent {
        at: 2.5,
        downtime: 1.7,
        target: FaultTarget::Machine(0),
    }]);
    for machines in [1usize, 2] {
        let mut inc_policy =
            MrisOnline::new(config(KnapsackChoice::Cadp, false), &instance, machines);
        let mut reb_policy =
            MrisOnline::new(config(KnapsackChoice::Cadp, true), &instance, machines);
        let inc = run_online_chaos(
            &instance,
            machines,
            &mut inc_policy,
            &plan,
            RestartSemantics::FullRestart,
        )
        .unwrap();
        let reb = run_online_chaos(
            &instance,
            machines,
            &mut reb_policy,
            &plan,
            RestartSemantics::FullRestart,
        )
        .unwrap();
        assert_eq!(inc.schedule, reb.schedule, "M = {machines}");
        assert_eq!(inc.log, reb.log, "M = {machines}");
        assert!(inc.log.total_kills() > 0, "plan must actually strike");
        assert!(
            !inc.log.recoveries.is_empty(),
            "recovery must land before the run drains"
        );
        assert!(
            inc.schedule.assignments().count() >= instance.len(),
            "every job is eventually placed"
        );
    }
}
