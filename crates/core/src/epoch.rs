//! Incremental epoch state for the Algorithm 1 interval loop.
//!
//! The offline pass ([`Mris`](crate::Mris)) and the online policy
//! ([`MrisOnline`](crate::MrisOnline)) execute the same per-iteration body:
//! filter the pending set down to the eligible jobs `J_k`, solve problem
//! **P1** at budget `zeta_k`, and place the batch earliest-fit. Before this
//! module both loops re-derived everything from scratch at every `gamma_k`
//! — an `O(pending)` filter plus a fresh knapsack solve and a handful of
//! allocations per epoch, even for epochs in which nothing changed.
//!
//! [`EpochState`] carries the loop's working set across iterations:
//!
//! * **Monotone eligibility frontier.** A job becomes eligible at the fixed
//!   threshold `max(p_j, available_from_j)` and — because the grid only
//!   advances — never becomes ineligible again. Jobs wait in a min-heap
//!   keyed by that threshold and are promoted into the `frontier` set at
//!   most once; an epoch whose frontier is empty costs `O(1)`.
//! * **Knapsack memo.** [`select_batch`](crate::algorithm::select_batch) is
//!   a pure function of `(items, zeta)` for a fixed solver, so solutions
//!   are memoized under a fingerprint of the item list and budget. Lookups
//!   verify *full equality* of the keyed inputs before reuse — a hash
//!   collision can cost a repeat solve, never a wrong batch. Hit/miss
//!   counts are exported as `mris_epoch_memo_{hits,misses}_total`.
//! * **Scratch arena.** The eligible list, item list, batch vector, and the
//!   solver's [`SolveScratch`] live in an [`EpochScratch`] reused across
//!   epochs, so a steady-state epoch allocates nothing beyond the returned
//!   placements.
//!
//! Stage timing: when an observability subscriber is installed the epoch
//! body opens `mris_epoch_{filter,solve,probe,commit}_seconds` spans (the
//! grid/compaction stage is timed by the caller as
//! `mris_epoch_grid_seconds`), giving the service bench its per-stage
//! breakdown. With no subscriber each span is one relaxed atomic load.
//!
//! The `force_rebuild` mode re-derives each epoch the way the
//! pre-incremental loop did — one flat set, an explicit threshold filter
//! per epoch, no memo — and exists solely as the reference for the
//! equivalence property suite (`tests/epoch_equivalence.rs`), which pins
//! both modes bit-identical.

use std::cmp::Reverse;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::hash::Hasher;

use mris_knapsack::{Item, KnapsackSolver, SolveScratch};
use mris_sim::{ClusterTimelines, OrdTime};
use mris_types::{Instance, JobId, Time};

use crate::algorithm::select_batch;
use crate::config::MrisConfig;

/// Memo entries kept before the table is wiped. Epochs that can hit the
/// memo recur within a few grid steps of each other, so a small bound
/// suffices; wiping (rather than evicting) keeps the table allocation-free
/// on the lookup path.
const MEMO_CAPACITY: usize = 256;

/// Reusable per-epoch buffers: cleared and refilled every epoch, never
/// shrunk, so steady-state epochs perform no allocation.
#[derive(Default)]
struct EpochScratch {
    /// Eligible job ids in ascending id order (`J_k`).
    eligible: Vec<JobId>,
    /// `(weight, volume)` items, parallel to `eligible`.
    items: Vec<Item>,
    /// The selected batch `B_k`, heuristic-sorted before placement.
    batch: Vec<JobId>,
    /// The knapsack solver's temporary buffers.
    solve: SolveScratch,
}

/// One memoized batch selection: the full keyed inputs (for collision-proof
/// verification) and the selected indices into the item list.
struct MemoEntry {
    items: Vec<Item>,
    zeta_bits: u64,
    selection: Vec<usize>,
}

/// Per-epoch outcome summary, consumed by the offline iteration log.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EpochStats {
    /// `|J_k|`: eligible jobs considered this epoch.
    pub eligible: usize,
    /// `|B_k|`: jobs selected and placed.
    pub scheduled: usize,
    /// Total weight of `B_k`.
    pub batch_weight: f64,
    /// Total volume of `B_k`.
    pub batch_volume: f64,
    /// Latest completion among this epoch's placements (0 if none).
    pub batch_end: Time,
}

/// The carried state described in the [module docs](self).
pub(crate) struct EpochState {
    /// Announced jobs not yet eligible, keyed by eligibility threshold
    /// `max(p_j, available_from_j)`. Ties carry the id so the pop order is
    /// total. Unused in `force_rebuild` mode.
    waiting: BinaryHeap<Reverse<(OrdTime, JobId)>>,
    /// Eligible-but-unscheduled jobs. In `force_rebuild` mode this holds
    /// *every* unscheduled job and the threshold filter runs per epoch.
    frontier: BTreeSet<JobId>,
    /// Eligibility threshold per job, indexed by `JobId::index()`. Source
    /// of truth for the `force_rebuild` filter; in incremental mode it only
    /// backs debug assertions.
    threshold: Vec<Time>,
    memo: HashMap<u64, MemoEntry>,
    scratch: EpochScratch,
    force_rebuild: bool,
}

/// Fingerprint of a `select_batch` input. Exact f64 bit patterns feed the
/// hash, so two inputs that fingerprint equal and then compare equal are
/// the *same* pure-function input.
fn fingerprint(items: &[Item], zeta: f64) -> u64 {
    let mut h = DefaultHasher::new();
    h.write_u64(items.len() as u64);
    for it in items {
        h.write_u64(it.weight.to_bits());
        h.write_u64(it.size.to_bits());
    }
    h.write_u64(zeta.to_bits());
    h.finish()
}

impl EpochState {
    /// State for a run over an instance of `num_jobs` jobs.
    pub(crate) fn new(num_jobs: usize, force_rebuild: bool) -> Self {
        EpochState {
            waiting: BinaryHeap::new(),
            frontier: BTreeSet::new(),
            threshold: vec![0.0; num_jobs],
            memo: HashMap::new(),
            scratch: EpochScratch::default(),
            force_rebuild,
        }
    }

    /// Announces a job (original arrival or chaos re-release): it becomes
    /// eligible once `gamma >= max(proc_time, available_from)`.
    pub(crate) fn insert(&mut self, job: JobId, proc_time: Time, available_from: Time) {
        let key = proc_time.max(available_from);
        self.threshold[job.index()] = key;
        if self.force_rebuild {
            self.frontier.insert(job);
        } else {
            debug_assert!(
                !self.frontier.contains(&job),
                "job {job:?} announced while already eligible"
            );
            self.waiting.push(Reverse((OrdTime(key), job)));
        }
    }

    /// True when no announced job remains unscheduled.
    pub(crate) fn is_empty(&self) -> bool {
        self.frontier.is_empty() && self.waiting.is_empty()
    }

    /// Drops every memoized solution. Called on machine failure: failures
    /// rewrite job availability (orphans, re-releases, weight aging) while
    /// the epoch is mid-flight, and a conservative wipe is cheaper to
    /// reason about than proving which entries survive.
    pub(crate) fn invalidate_memo(&mut self) {
        self.memo.clear();
    }

    /// Appends a canonical encoding of the replay-relevant state to `out`:
    /// the waiting heap (sorted — heap layout is history-dependent), the
    /// frontier, the thresholds, and the rebuild mode. The knapsack memo
    /// and the scratch arena are derived caches and are excluded.
    pub(crate) fn durable_bytes(&self, out: &mut Vec<u8>) {
        let mut waiting: Vec<(u64, u32)> = self
            .waiting
            .iter()
            .map(|&Reverse((OrdTime(key), job))| (key.to_bits(), job.0))
            .collect();
        waiting.sort_unstable();
        out.extend_from_slice(&(waiting.len() as u64).to_le_bytes());
        for (key, job) in waiting {
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&job.to_le_bytes());
        }
        out.extend_from_slice(&(self.frontier.len() as u64).to_le_bytes());
        for job in &self.frontier {
            out.extend_from_slice(&job.0.to_le_bytes());
        }
        out.extend_from_slice(&(self.threshold.len() as u64).to_le_bytes());
        for &t in &self.threshold {
            out.extend_from_slice(&t.to_bits().to_le_bytes());
        }
        out.push(self.force_rebuild as u8);
    }

    /// Promotes every job whose threshold has been reached into the
    /// frontier. Monotone: `gamma` never decreases within a run, so each
    /// job is promoted exactly once.
    fn advance_frontier(&mut self, gamma: Time) {
        while let Some(&Reverse((OrdTime(key), job))) = self.waiting.peek() {
            if key > gamma {
                break;
            }
            self.waiting.pop();
            self.frontier.insert(job);
        }
    }

    /// Runs one Algorithm 1 epoch at `gamma` with budget `zeta`: frontier
    /// advance, batch selection (memoized), heuristic sort, and
    /// earliest-fit placement committed onto `timelines`. Placements are
    /// appended to `placements` in placement order; selected jobs leave the
    /// state.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_epoch(
        &mut self,
        instance: &Instance,
        timelines: &mut ClusterTimelines,
        solver: &dyn KnapsackSolver,
        config: &MrisConfig,
        gamma: Time,
        zeta: f64,
        placements: &mut Vec<(JobId, usize, Time)>,
    ) -> EpochStats {
        let mut stats = EpochStats::default();
        {
            let _s = mris_obs::span!("mris_epoch_filter_seconds");
            self.scratch.eligible.clear();
            if self.force_rebuild {
                // Reference path: explicit threshold filter over the whole
                // unscheduled set, exactly as the pre-incremental loop did.
                let threshold = &self.threshold;
                self.scratch.eligible.extend(
                    self.frontier
                        .iter()
                        .copied()
                        .filter(|&j| threshold[j.index()] <= gamma),
                );
            } else {
                self.advance_frontier(gamma);
                self.scratch.eligible.extend(self.frontier.iter().copied());
            }
        }
        stats.eligible = self.scratch.eligible.len();
        if stats.eligible == 0 {
            return stats;
        }

        {
            let _s = mris_obs::span!("mris_epoch_solve_seconds");
            self.scratch.items.clear();
            self.scratch
                .items
                .extend(self.scratch.eligible.iter().map(|&j| {
                    let job = instance.job(j);
                    Item::new(job.weight, job.volume())
                }));
            let key = fingerprint(&self.scratch.items, zeta);
            let cached = self
                .memo
                .get(&key)
                .filter(|e| e.zeta_bits == zeta.to_bits() && e.items == self.scratch.items);
            self.scratch.batch.clear();
            if let Some(entry) = cached {
                mris_obs::counter_add("mris_epoch_memo_hits_total", 1);
                self.scratch
                    .batch
                    .extend(entry.selection.iter().map(|&i| self.scratch.eligible[i]));
            } else {
                mris_obs::counter_add("mris_epoch_memo_misses_total", 1);
                let selection =
                    select_batch(solver, &mut self.scratch.solve, &self.scratch.items, zeta);
                self.scratch
                    .batch
                    .extend(selection.iter().map(|&i| self.scratch.eligible[i]));
                if !self.force_rebuild {
                    if self.memo.len() >= MEMO_CAPACITY {
                        self.memo.clear();
                    }
                    self.memo.insert(
                        key,
                        MemoEntry {
                            items: self.scratch.items.clone(),
                            zeta_bits: zeta.to_bits(),
                            selection,
                        },
                    );
                }
            }
            let heuristic = config.heuristic;
            self.scratch.batch.sort_by(|&a, &b| {
                OrdTime(heuristic.key(instance.job(a)))
                    .cmp(&OrdTime(heuristic.key(instance.job(b))))
                    .then(a.cmp(&b))
            });
        }
        if self.scratch.batch.is_empty() {
            return stats;
        }

        // Earliest-fit placement with floor gamma (Section 5.2/5.3); probes
        // ride the timelines' fit-hint cache, commits follow immediately so
        // the hint learned by job i prunes the probe for job i+1. Probe and
        // commit timings are accumulated across the batch and recorded once
        // per epoch: a per-job histogram insert costs as much as a cheap
        // probe, which both skewed the distribution and showed up in the
        // stage breakdown itself. The `mris_epoch_{probe,commit}_seconds`
        // families keep the same per-epoch sums; only their counts change
        // (one sample per epoch instead of per job).
        let floor = if config.backfill {
            gamma
        } else {
            gamma.max(timelines.horizon())
        };
        let timed = mris_obs::enabled();
        let mut probe_time = std::time::Duration::ZERO;
        let mut commit_time = std::time::Duration::ZERO;
        for &id in &self.scratch.batch {
            let job = instance.job(id);
            // `proc_time` is nominal work; the fit probe and `commit_job`
            // both scale it by the chosen machine's speed (a no-op on unit
            // machines, where `p / 1.0` is bitwise `p`).
            let (machine, start) = if timed {
                let t0 = std::time::Instant::now();
                let (machine, start) =
                    timelines.earliest_fit_mut(floor, job.proc_time, &job.demands);
                let t1 = std::time::Instant::now();
                timelines.commit_job(machine, start, job.proc_time, &job.demands);
                probe_time += t1 - t0;
                commit_time += t1.elapsed();
                (machine, start)
            } else {
                let (machine, start) =
                    timelines.earliest_fit_mut(floor, job.proc_time, &job.demands);
                timelines.commit_job(machine, start, job.proc_time, &job.demands);
                (machine, start)
            };
            placements.push((id, machine, start));
            self.frontier.remove(&id);
            stats.scheduled += 1;
            stats.batch_weight += job.weight;
            stats.batch_volume += job.volume();
            stats.batch_end = stats.batch_end.max(start + job.proc_time);
        }
        if timed {
            mris_obs::histogram_record("mris_epoch_probe_seconds", probe_time.as_secs_f64());
            mris_obs::histogram_record("mris_epoch_commit_seconds", commit_time.as_secs_f64());
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_inputs() {
        let a = vec![Item::new(1.0, 2.0), Item::new(3.0, 4.0)];
        let b = vec![Item::new(1.0, 2.0), Item::new(3.0, 5.0)];
        assert_ne!(fingerprint(&a, 10.0), fingerprint(&b, 10.0));
        assert_ne!(fingerprint(&a, 10.0), fingerprint(&a, 20.0));
        assert_eq!(fingerprint(&a, 10.0), fingerprint(&a.clone(), 10.0));
    }

    #[test]
    fn frontier_promotion_is_monotone_and_single_shot() {
        let mut state = EpochState::new(3, false);
        state.insert(JobId(0), 1.0, 0.0); // threshold 1
        state.insert(JobId(1), 4.0, 0.0); // threshold 4
        state.insert(JobId(2), 1.0, 6.0); // threshold 6
        state.advance_frontier(2.0);
        assert_eq!(state.frontier.len(), 1);
        assert!(state.frontier.contains(&JobId(0)));
        state.advance_frontier(6.0);
        assert_eq!(state.frontier.len(), 3);
        assert!(state.waiting.is_empty());
    }

    #[test]
    fn empty_state_reports_empty() {
        let mut state = EpochState::new(1, false);
        assert!(state.is_empty());
        state.insert(JobId(0), 1.0, 0.0);
        assert!(!state.is_empty());
    }
}
