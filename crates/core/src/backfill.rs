//! The Priority-Queue makespan subroutine with backfilling (Section 5.2).
//!
//! Given a batch of jobs (already selected by the knapsack) and a committed
//! cluster timeline, the subroutine walks the batch in heuristic order and
//! gives every job the earliest feasible `(machine, start)` with
//! `start >= floor`. This is the offline PQ of Section 5.2 — release times
//! are ignored within the batch — combined with the backfilling of
//! Section 5.3 that lets placements flow into idle gaps left by earlier
//! iterations.
//!
//! **Why Lemma 6.3 survives backfilling.** The lemma needs: if a job is
//! active at `tau`, it could not have feasibly started at any earlier
//! `t >= floor` (else PQ would have started it there). Earliest-fit gives
//! each job exactly that property against the usage *at placement time*, and
//! later placements only increase usage, so the property holds against the
//! final profile too. Hence a batch placed on an *empty* timeline finishes by
//! `max(2 p_max, 2 V/M)` after `floor` — tested below and property-tested in
//! `tests/`.

use mris_sim::ClusterTimelines;
use mris_types::{Instance, JobId, Time};

/// Places `batch` (in the given order) onto `timelines`, each job at its
/// earliest feasible start `>= floor`, committing as it goes. Returns the
/// placements `(job, machine, start)` in batch order.
///
/// Ties between machines break toward the lower index, making the subroutine
/// fully deterministic for a fixed batch order.
pub fn place_batch(
    timelines: &mut ClusterTimelines,
    instance: &Instance,
    batch: &[JobId],
    floor: Time,
) -> Vec<(JobId, usize, Time)> {
    let mut placements = Vec::with_capacity(batch.len());
    for &id in batch {
        let job = instance.job(id);
        let (machine, start) = timelines.earliest_fit_mut(floor, job.proc_time, &job.demands);
        timelines.commit(machine, start, job.proc_time, &job.demands);
        placements.push((id, machine, start));
    }
    placements
}

/// The Lemma 6.3 upper bound on the makespan of a batch placed by
/// [`place_batch`] on an **empty** cluster of `machines` machines:
/// `max(2 * p_max, 2 * V / M)` where `V` is the batch volume. (Relative to
/// the placement floor.)
pub fn batch_makespan_bound(instance: &Instance, batch: &[JobId], machines: usize) -> Time {
    let p_max = batch
        .iter()
        .map(|&j| instance.job(j).proc_time)
        .fold(0.0_f64, f64::max);
    let volume: f64 = batch.iter().map(|&j| instance.job(j).volume()).sum();
    (2.0 * p_max).max(2.0 * volume / machines as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::{Instance, Job, JobId};

    fn inst(jobs: Vec<Job>, r: usize) -> Instance {
        Instance::from_unnumbered(jobs, r).unwrap()
    }

    fn all_ids(instance: &Instance) -> Vec<JobId> {
        instance.jobs().iter().map(|j| j.id).collect()
    }

    #[test]
    fn places_in_order_at_earliest_fit() {
        let instance = inst(
            vec![
                Job::from_fractions(JobId(0), 0.0, 3.0, 1.0, &[0.7]),
                Job::from_fractions(JobId(0), 0.0, 2.0, 1.0, &[0.7]),
                Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.2]),
            ],
            1,
        );
        let mut tl = ClusterTimelines::new(1, 1);
        let placements = place_batch(&mut tl, &instance, &all_ids(&instance), 0.0);
        assert_eq!(placements[0], (JobId(0), 0, 0.0));
        assert_eq!(placements[1], (JobId(1), 0, 3.0));
        // The small job backfills alongside job 0.
        assert_eq!(placements[2], (JobId(2), 0, 0.0));
    }

    #[test]
    fn respects_floor() {
        let instance = inst(
            vec![Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.5])],
            1,
        );
        let mut tl = ClusterTimelines::new(2, 1);
        let placements = place_batch(&mut tl, &instance, &all_ids(&instance), 7.5);
        assert_eq!(placements[0].2, 7.5);
    }

    #[test]
    fn lemma_6_3_bound_holds_on_tight_instance() {
        // Lemma 6.4's tight family: N jobs, demand 1/2 + delta, so only one
        // runs at a time; makespan = N * p approaches 2V/M as delta -> 0.
        let n = 8;
        let p = 3.0;
        let delta = 0.01;
        let jobs: Vec<Job> = (0..n)
            .map(|_| Job::from_fractions(JobId(0), 0.0, p, 1.0, &[0.5 + delta, 0.0]))
            .collect();
        let instance = inst(jobs, 2);
        let mut tl = ClusterTimelines::new(1, 2);
        let placements = place_batch(&mut tl, &instance, &all_ids(&instance), 0.0);
        let makespan = placements
            .iter()
            .map(|&(j, _, s)| s + instance.job(j).proc_time)
            .fold(0.0_f64, f64::max);
        assert!((makespan - n as f64 * p).abs() < 1e-9);
        let bound = batch_makespan_bound(&instance, &all_ids(&instance), 1);
        assert!(makespan <= bound + 1e-9);
        // Tightness: the bound is within (1 + 2 delta) of the achieved value.
        assert!(bound <= makespan * (1.0 + 2.0 * delta) + 1e-9);
    }

    #[test]
    fn bound_p_max_branch() {
        // One long skinny job: bound driven by 2 * p_max.
        let instance = inst(
            vec![Job::from_fractions(JobId(0), 0.0, 10.0, 1.0, &[0.1])],
            1,
        );
        let ids = all_ids(&instance);
        assert!((batch_makespan_bound(&instance, &ids, 4) - 20.0).abs() < 1e-9);
    }
}
