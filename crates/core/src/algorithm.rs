//! The MRIS main loop (Algorithm 1).

use mris_knapsack::{Cadp, GreedyConstraint, Item, KnapsackSolver, SolveScratch};
use mris_schedulers::Scheduler;
use mris_sim::ClusterTimelines;
use mris_types::{ClusterSpec, Instance, JobId, Schedule, Time};

use crate::config::{KnapsackChoice, MrisConfig};
use crate::epoch::EpochState;

/// Multi-Resource Interval Scheduling (Algorithm 1): the paper's main
/// contribution. `8R(1 + eps)`-competitive for AWCT (Theorem 6.8) and for
/// makespan (Lemma 6.9) under the default configuration.
///
/// ```
/// use mris_core::Mris;
/// use mris_schedulers::Scheduler;
/// use mris_types::{Instance, Job, JobId};
///
/// let jobs = vec![
///     Job::from_fractions(JobId(0), 0.0, 4.0, 1.0, &[1.0, 1.0]),
///     Job::from_fractions(JobId(1), 0.5, 1.0, 1.0, &[0.3, 0.1]),
/// ];
/// let instance = Instance::new(jobs, 2).unwrap();
/// let schedule = Mris::default().schedule(&instance, 2);
/// schedule.validate(&instance).unwrap();
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Mris {
    /// Algorithm knobs; `Default` reproduces the paper's configuration.
    pub config: MrisConfig,
}

/// Per-iteration instrumentation returned by [`Mris::schedule_with_log`].
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStats {
    /// Iteration index `k`.
    pub k: usize,
    /// The interval endpoint `gamma_k` (wall-clock decision time).
    pub gamma: Time,
    /// Knapsack volume budget `zeta_k = R * M * gamma_k`.
    pub zeta: f64,
    /// Number of eligible pending jobs `|J_k|`.
    pub eligible: usize,
    /// Number of jobs selected and scheduled `|B_k|`.
    pub scheduled: usize,
    /// Total weight of `B_k`.
    pub batch_weight: f64,
    /// Total volume of `B_k` (at most `blowup * zeta`).
    pub batch_volume: f64,
    /// Latest completion among this iteration's placements (0 if none).
    pub batch_end: Time,
}

/// Solves P1 over `items` with budget `zeta` and returns the selected item
/// indices, with "free" zero-weight items folded in.
///
/// Zero-weight items are never chosen by the knapsack (they add volume for
/// no profit), but every job must eventually be scheduled. Once a
/// zero-weight item's volume is free — i.e. the leftover budget (at the
/// solver's capacity blow-up) covers it — it joins the batch; this keeps the
/// Lemma 6.5 volume bound intact.
///
/// The folding binary-searches `Solution::selected`, relying on the
/// [`KnapsackSolver`] contract that selections are strictly increasing;
/// that invariant is re-checked here in debug builds.
pub(crate) fn select_batch(
    solver: &dyn KnapsackSolver,
    scratch: &mut SolveScratch,
    items: &[Item],
    zeta: f64,
) -> Vec<usize> {
    let solution = solver.solve_into(scratch, items, zeta);
    debug_assert!(
        solution.selected.windows(2).all(|w| w[0] < w[1]),
        "KnapsackSolver contract violation: {} returned a selection that is \
         not strictly increasing: {:?}",
        solver.name(),
        solution.selected
    );
    let mut batch = solution.selected.clone();
    let mut used = solution.size;
    let budget = zeta * solver.capacity_blowup();
    for (idx, item) in items.iter().enumerate() {
        if item.weight == 0.0
            && solution.selected.binary_search(&idx).is_err()
            && used + item.size <= budget
        {
            used += item.size;
            batch.push(idx);
        }
    }
    batch
}

impl Mris {
    /// MRIS with an explicit configuration.
    pub fn with_config(config: MrisConfig) -> Self {
        config.validate();
        Mris { config }
    }

    /// Runs Algorithm 1 and additionally returns per-iteration statistics.
    pub fn schedule_with_log(
        &self,
        instance: &Instance,
        num_machines: usize,
    ) -> (Schedule, Vec<IterationStats>) {
        self.schedule_with_log_on(instance, &ClusterSpec::uniform(num_machines))
    }

    /// [`Mris::schedule_with_log`] on an explicit cluster description:
    /// placement probes and commits scale nominal work by each machine's
    /// speed and respect per-machine capacities. On a uniform spec this is
    /// bit-identical to the historical path.
    ///
    /// Precedence edges are ignored here — the offline pass has no
    /// completion events to gate on. [`Scheduler::try_schedule_on`] routes
    /// DAG instances through the event-driven engine instead.
    pub fn schedule_with_log_on(
        &self,
        instance: &Instance,
        cluster: &ClusterSpec,
    ) -> (Schedule, Vec<IterationStats>) {
        self.config.validate();
        let num_machines = cluster.len();
        assert!(num_machines > 0);
        let _span = mris_obs::span!(
            "mris_schedule_seconds",
            jobs = instance.len(),
            machines = num_machines
        );
        let mut schedule = Schedule::new(instance.len(), num_machines);
        let mut log = Vec::new();
        if instance.is_empty() {
            return (schedule, log);
        }

        let r = instance.num_resources();
        let stats = instance.stats();
        // The paper normalizes p_j >= 1 and starts the grid at gamma_0 = 1
        // (= the minimum processing time). Starting at min_proc generalizes
        // that to unnormalized instances: no job can complete before gamma_0,
        // which is what the Lemma 6.6 accounting needs.
        let gamma0 = stats.min_proc;
        debug_assert!(gamma0 > 0.0);

        let solver: Box<dyn KnapsackSolver> = match self.config.knapsack {
            KnapsackChoice::Cadp => Box::new(Cadp::new(self.config.epsilon)),
            KnapsackChoice::Greedy => Box::new(GreedyConstraint),
            KnapsackChoice::GreedyHalf => Box::new(mris_knapsack::GreedyHalf),
            KnapsackChoice::Exact => Box::new(mris_knapsack::ExactDp::default()),
        };

        let mut timelines = ClusterTimelines::with_spec(cluster, r);
        // Lines 3-6 of each iteration run inside `EpochState::run_epoch`:
        // eligibility via the monotone frontier, P1 via the memoized
        // knapsack, placement via PQ-with-backfilling (see `epoch.rs`).
        let mut state = EpochState::new(instance.len(), self.config.force_epoch_rebuild);
        for job in instance.jobs() {
            state.insert(job.id, job.proc_time, job.release);
        }
        let mut placements: Vec<(JobId, usize, Time)> = Vec::new();
        let mut gamma = gamma0;
        let mut k = 0usize;
        while !state.is_empty() {
            let zeta = (r * num_machines) as f64 * gamma;
            placements.clear();
            let stats = state.run_epoch(
                instance,
                &mut timelines,
                solver.as_ref(),
                &self.config,
                gamma,
                zeta,
                &mut placements,
            );
            if stats.scheduled > 0 {
                for &(j, m, s) in &placements {
                    schedule.assign(j, m, s).expect("MRIS placed a job twice");
                }
                log.push(IterationStats {
                    k,
                    gamma,
                    zeta,
                    eligible: stats.eligible,
                    scheduled: stats.scheduled,
                    batch_weight: stats.batch_weight,
                    batch_volume: stats.batch_volume,
                    batch_end: stats.batch_end,
                });
            }
            k += 1;
            gamma = gamma0 * self.config.alpha.powi(k as i32);
        }
        mris_obs::counter_add("mris_schedule_iterations_total", k as u64);
        (schedule, log)
    }
}

impl Scheduler for Mris {
    fn name(&self) -> String {
        match self.config.knapsack {
            KnapsackChoice::Cadp => format!("MRIS-{}", self.config.heuristic),
            KnapsackChoice::Greedy => format!("MRIS-GREEDY-{}", self.config.heuristic),
            KnapsackChoice::GreedyHalf => {
                format!("MRIS-GREEDY-HALF-{}", self.config.heuristic)
            }
            KnapsackChoice::Exact => format!("MRIS-EXACT-{}", self.config.heuristic),
        }
    }

    fn try_schedule_on(
        &self,
        instance: &Instance,
        cluster: &ClusterSpec,
    ) -> Result<Schedule, mris_types::SchedulingError> {
        if instance.has_precedence() {
            // The offline pass packs timelines with no completion events to
            // gate on, so DAG instances run through the event-driven engine
            // instead: fault-free, MrisOnline reproduces the offline pass
            // exactly (pinned by the chaos determinism suite), and the
            // driver withholds each job until its predecessors complete.
            let mut policy = crate::MrisOnline::new_on(self.config, instance, cluster);
            return mris_sim::run_online(instance, cluster, &mut policy);
        }
        Ok(self.schedule_with_log_on(instance, cluster).0)
    }

    fn supports_precedence(&self) -> bool {
        true
    }

    fn supports_heterogeneous(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_schedulers::{Pq, SortHeuristic};
    use mris_types::Job;

    fn inst(jobs: Vec<Job>, r: usize) -> Instance {
        Instance::from_unnumbered(jobs, r).unwrap()
    }

    fn j(r: f64, p: f64, w: f64, d: &[f64]) -> Job {
        Job::from_fractions(JobId(0), r, p, w, d)
    }

    #[test]
    fn schedules_everything_feasibly_and_online() {
        let jobs: Vec<Job> = (0..40)
            .map(|i| {
                j(
                    (i % 8) as f64 * 0.7,
                    1.0 + (i % 5) as f64,
                    1.0 + (i % 3) as f64,
                    &[0.1 + (i % 7) as f64 * 0.1, 0.05 * (i % 10) as f64],
                )
            })
            .collect();
        let instance = inst(jobs, 2);
        let (s, log) = Mris::default().schedule_with_log(&instance, 3);
        s.validate(&instance).unwrap();
        assert!(!log.is_empty());
        // Online property beyond S_j >= r_j: every job starts at or after the
        // gamma of the iteration that scheduled it. Reconstruct per-iteration
        // floors from the log order.
        let total: usize = log.iter().map(|it| it.scheduled).sum();
        assert_eq!(total, instance.len());
    }

    #[test]
    fn exercises_patience_on_lemma_4_1_instance() {
        // One machine; a full-demand blocker at t=0 with p = 16, and 15 small
        // jobs at t = 0.1 with p = 1, demand 1/15. PQ runs the blocker first;
        // MRIS schedules the small jobs in an early interval and defers the
        // blocker (it only becomes eligible once gamma >= 16).
        let n = 16usize;
        let p = n as f64;
        let mut jobs = vec![j(0.0, p, 1.0, &[1.0])];
        for _ in 0..n - 1 {
            jobs.push(j(0.1, 1.0, 1.0, &[1.0 / (n - 1) as f64]));
        }
        let instance = inst(jobs, 1);
        let mris = Mris::default().schedule(&instance, 1);
        let pq = Pq::new(SortHeuristic::Wsjf).schedule(&instance, 1);
        mris.validate(&instance).unwrap();
        pq.validate(&instance).unwrap();
        assert!(
            mris.awct(&instance) < pq.awct(&instance) / 2.0,
            "MRIS {} vs PQ {}",
            mris.awct(&instance),
            pq.awct(&instance)
        );
        // The blocker is deferred behind the small jobs.
        let blocker_start = mris.get(JobId(0)).unwrap().start;
        for i in 1..n {
            assert!(mris.get(JobId(i as u32)).unwrap().start < blocker_start);
        }
    }

    #[test]
    fn batch_volume_respects_blowup() {
        let jobs: Vec<Job> = (0..30)
            .map(|i| j(0.0, 1.0 + (i % 4) as f64, 1.0, &[0.5, 0.5]))
            .collect();
        let instance = inst(jobs, 2);
        let config = MrisConfig::default();
        let (_, log) = Mris::with_config(config).schedule_with_log(&instance, 1);
        for it in &log {
            assert!(
                it.batch_volume <= (1.0 + config.epsilon) * it.zeta + 1e-9,
                "iteration {} volume {} exceeds budget {}",
                it.k,
                it.batch_volume,
                (1.0 + config.epsilon) * it.zeta
            );
        }
    }

    #[test]
    fn greedy_variant_schedules_everything() {
        let jobs: Vec<Job> = (0..25)
            .map(|i| j((i % 5) as f64, 1.0 + (i % 3) as f64, 1.0 + i as f64, &[0.3]))
            .collect();
        let instance = inst(jobs, 1);
        let mris = Mris::with_config(MrisConfig {
            knapsack: KnapsackChoice::Greedy,
            ..Default::default()
        });
        let s = mris.schedule(&instance, 2);
        s.validate(&instance).unwrap();
        assert!(mris.name().contains("GREEDY"));
    }

    #[test]
    fn zero_weight_jobs_are_eventually_scheduled() {
        let jobs = vec![
            j(0.0, 2.0, 0.0, &[0.5]),
            j(0.0, 1.0, 5.0, &[0.5]),
            j(3.0, 1.0, 0.0, &[1.0]),
        ];
        let instance = inst(jobs, 1);
        let s = Mris::default().schedule(&instance, 1);
        s.validate(&instance).unwrap();
    }

    #[test]
    fn no_backfill_appends_iterations() {
        let jobs: Vec<Job> = (0..10)
            .map(|i| j(0.0, 1.0 + (i % 2) as f64, 1.0, &[0.9]))
            .collect();
        let instance = inst(jobs.clone(), 1);
        let with = Mris::default().schedule(&instance, 1);
        let without = Mris::with_config(MrisConfig {
            backfill: false,
            ..Default::default()
        })
        .schedule(&instance, 1);
        with.validate(&instance).unwrap();
        without.validate(&instance).unwrap();
        assert!(with.awct(&instance) <= without.awct(&instance) + 1e-9);
    }

    #[test]
    fn handles_unnormalized_instances() {
        // Processing times below 1: gamma_0 adapts to min_proc.
        let jobs = vec![j(0.0, 0.25, 1.0, &[0.5]), j(0.1, 0.5, 2.0, &[0.5])];
        let instance = inst(jobs, 1);
        let s = Mris::default().schedule(&instance, 1);
        s.validate(&instance).unwrap();
    }

    #[test]
    fn empty_instance() {
        let instance = Instance::new(vec![], 2).unwrap();
        let (s, log) = Mris::default().schedule_with_log(&instance, 4);
        assert!(s.is_complete());
        assert!(log.is_empty());
    }

    /// A mock solver with a fixed (possibly contract-violating) selection.
    struct FixedSelection(Vec<usize>);

    impl KnapsackSolver for FixedSelection {
        fn name(&self) -> &'static str {
            "mock-fixed"
        }
        fn solve_into(
            &self,
            _scratch: &mut SolveScratch,
            items: &[Item],
            _capacity: f64,
        ) -> mris_knapsack::Solution {
            // Deliberately bypasses `Solution::from_selected` so tests can
            // hand the call site an out-of-contract selection.
            mris_knapsack::Solution {
                selected: self.0.clone(),
                weight: self.0.iter().map(|&i| items[i].weight).sum(),
                size: self.0.iter().map(|&i| items[i].size).sum(),
            }
        }
        fn capacity_blowup(&self) -> f64 {
            1.0
        }
    }

    #[test]
    fn select_batch_folds_free_zero_weight_items() {
        // Solver picks item 1 only; items 0 and 3 are zero-weight. With
        // budget 10 and 4.0 used, item 0 (size 3) folds in, then item 3
        // (size 4) no longer fits the leftover budget.
        let items = vec![
            Item::new(0.0, 3.0),
            Item::new(5.0, 4.0),
            Item::new(2.0, 1.0),
            Item::new(0.0, 4.0),
        ];
        let batch = select_batch(
            &FixedSelection(vec![1]),
            &mut SolveScratch::default(),
            &items,
            10.0,
        );
        assert_eq!(batch, vec![1, 0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "not strictly increasing")]
    fn unsorted_solver_selection_is_caught_in_debug() {
        let items = vec![
            Item::new(1.0, 1.0),
            Item::new(2.0, 1.0),
            Item::new(0.0, 1.0),
        ];
        // An unsorted selection breaks the binary-search invariant of the
        // zero-weight folding; the call site must reject it loudly instead
        // of silently double-scheduling item 2.
        let _ = select_batch(
            &FixedSelection(vec![1, 0]),
            &mut SolveScratch::default(),
            &items,
            10.0,
        );
    }
}
