//! MRIS configuration.

use mris_schedulers::SortHeuristic;

/// Which constraint-approximate knapsack solves problem **P1** each
/// iteration (Figure 2 compares the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnapsackChoice {
    /// Constraint-approximate dynamic programming (Lemma 6.1): optimal
    /// weight within `(1 + eps)` of the volume budget; `O(n^2 / eps)`.
    /// Yields the `8R(1 + eps)` competitive ratio.
    Cadp,
    /// The Remark 1 greedy: optimal weight within twice the volume budget;
    /// `O(n log n)`. Yields a `16R` competitive ratio (`MRIS-GREEDY`).
    Greedy,
    /// The classic capacity-respecting density greedy (better of the
    /// fitting prefix or the single overflow item). Only a weight
    /// 1/2-approximation, so **no** competitive guarantee carries through
    /// Lemma 6.5 — included for the Figure 2 comparison and ablations.
    GreedyHalf,
    /// Exact pseudo-polynomial dynamic programming
    /// ([`ExactDp`](mris_knapsack::ExactDp) at its default resolution):
    /// optimal weight *within* the volume budget (blow-up 1). Exponentially
    /// slower than CADP on adversarial sizes but exact; yields the `8R`
    /// competitive ratio and serves as the reference solver for the epoch
    /// equivalence suite (`MRIS-EXACT`).
    Exact,
}

/// Tuning knobs for [`Mris`](crate::Mris). `Default` reproduces the paper's
/// configuration: `alpha = 2`, CADP with `eps = 0.5`, WSJF placement order,
/// backfilling enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrisConfig {
    /// CADP's constraint-approximation parameter, `0 < eps < 1` (ignored by
    /// the greedy knapsack).
    pub epsilon: f64,
    /// Base of the geometric interval sequence. Theorem 6.8 requires
    /// `gamma_{k+1} - gamma_k >= gamma_k`, i.e. `alpha >= 2`; the paper
    /// picks the smallest such base, `alpha = 2`.
    pub alpha: f64,
    /// Order in which each iteration's batch `B_k` is handed to the
    /// Priority-Queue makespan subroutine. The competitive ratio is
    /// independent of this choice (Section 7.3); WSJF performs best
    /// empirically (Figure 1).
    pub heuristic: SortHeuristic,
    /// The **P1** solver.
    pub knapsack: KnapsackChoice,
    /// Whether batch placement may backfill into gaps left by earlier
    /// iterations (Section 5.3). Disabling reproduces the worst case of the
    /// Theorem 6.8 analysis, where each iteration's schedule strictly
    /// follows the previous one; exposed for the ablation bench.
    pub backfill: bool,
    /// Testing-only: disables the incremental epoch state (monotone
    /// eligibility frontier + knapsack memo) and re-derives each epoch from
    /// scratch, as the pre-incremental loop did. The equivalence property
    /// suite pins the two modes bit-identical; there is no reason to enable
    /// this in production.
    #[doc(hidden)]
    pub force_epoch_rebuild: bool,
}

impl Default for MrisConfig {
    fn default() -> Self {
        MrisConfig {
            epsilon: 0.5,
            alpha: 2.0,
            heuristic: SortHeuristic::Wsjf,
            knapsack: KnapsackChoice::Cadp,
            backfill: true,
            force_epoch_rebuild: false,
        }
    }
}

impl MrisConfig {
    /// Panics unless the configuration satisfies the analysis' requirements
    /// (`0 < epsilon < 1`, `alpha >= 2`).
    pub fn validate(&self) {
        assert!(
            self.epsilon > 0.0 && self.epsilon < 1.0,
            "MRIS requires 0 < epsilon < 1, got {}",
            self.epsilon
        );
        assert!(
            self.alpha >= 2.0 && self.alpha.is_finite(),
            "MRIS requires alpha >= 2 (gamma_(k+1) - gamma_k >= gamma_k), got {}",
            self.alpha
        );
    }

    /// The proven competitive ratio of this configuration for AWCT (and
    /// makespan): `2 * R * c * alpha^2 / (alpha - 1)` where `c` is the
    /// knapsack's capacity blow-up. At the paper's `alpha = 2` this is
    /// `8R(1 + eps)` for CADP and `16R` for the greedy. (Each batch spans at
    /// most `2 R c gamma_k`; summing the geometric prefix contributes the
    /// `alpha / (alpha - 1)` factor and indexing completion intervals by
    /// `gamma_{k-1}` the remaining `alpha`.)
    pub fn competitive_ratio(&self, num_resources: usize) -> f64 {
        let blowup = match self.knapsack {
            KnapsackChoice::Cadp => 1.0 + self.epsilon,
            KnapsackChoice::Greedy => 2.0,
            // No proven ratio: the weight guarantee needed by Lemma 6.5
            // fails for the half-approximation.
            KnapsackChoice::GreedyHalf => return f64::INFINITY,
            // Exact solver: blow-up 1, i.e. the eps -> 0 limit of CADP.
            KnapsackChoice::Exact => 1.0,
        };
        2.0 * num_resources as f64 * blowup * self.alpha * self.alpha / (self.alpha - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = MrisConfig::default();
        c.validate();
        assert_eq!(c.alpha, 2.0);
        assert_eq!(c.knapsack, KnapsackChoice::Cadp);
        // 8R(1 + eps) with R = 4, eps = 0.5 -> 48.
        assert!((c.competitive_ratio(4) - 48.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_ratio_is_16r() {
        let c = MrisConfig {
            knapsack: KnapsackChoice::Greedy,
            ..Default::default()
        };
        assert!((c.competitive_ratio(3) - 48.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha >= 2")]
    fn rejects_small_alpha() {
        MrisConfig {
            alpha: 1.5,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "0 < epsilon < 1")]
    fn rejects_bad_epsilon() {
        MrisConfig {
            epsilon: 0.0,
            ..Default::default()
        }
        .validate();
    }
}
