//! MRIS as an incremental [`OnlinePolicy`], for the event-driven and
//! fault-injection drivers.
//!
//! [`Mris`](crate::Mris) constructs the whole schedule in one offline pass
//! over the geometric interval grid. [`MrisOnline`] runs the *same*
//! Algorithm 1 loop incrementally: iteration `k` executes when the
//! simulated clock reaches `gamma_k` (requested through
//! [`OnlinePolicy::next_wakeup`]), commits its batch on the shared
//! [`ClusterTimelines`], and the committed starts are realized on the live
//! cluster as their times arrive. Under a fault-free run this produces a
//! schedule byte-identical to the offline pass (pinned by the chaos
//! property suite); under machine failures it additionally:
//!
//! * truncates the failed machine's committed timeline
//!   ([`ClusterTimelines::reset_machine`]) and blocks out the downtime with
//!   a full-capacity commitment, and
//! * re-plans *orphaned* jobs — committed to the failed machine but not yet
//!   started — in later iterations, alongside the killed jobs the driver
//!   re-releases.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mris_knapsack::{Cadp, GreedyConstraint, KnapsackSolver};
use mris_sim::{ClusterTimelines, Dispatcher, OnlinePolicy, OrdTime};
use mris_types::{ClusterSpec, Instance, JobId, SchedulingError, Time};

use crate::config::{KnapsackChoice, MrisConfig};
use crate::epoch::EpochState;

/// The incremental MRIS policy. Construct per run (it is stateful) with
/// [`MrisOnline::new`], then drive it with
/// [`run_online_chaos`](mris_sim::run_online_chaos).
pub struct MrisOnline {
    config: MrisConfig,
    solver: Box<dyn KnapsackSolver>,
    timelines: ClusterTimelines,
    num_machines: usize,
    num_resources: usize,
    gamma0: Time,
    /// Current interval endpoint `gamma_k`; iteration `k` runs when the
    /// clock reaches it.
    gamma: Time,
    k: usize,
    /// Announced-but-uncommitted jobs plus the per-run caches: the monotone
    /// eligibility frontier, the knapsack memo, and the epoch scratch arena
    /// (see `epoch.rs`). Availability (release for originals, the
    /// kill/orphan instant for fault victims) is folded into each job's
    /// eligibility threshold at insertion.
    state: EpochState,
    /// Committed placements `(start, job, machine)` not yet realized on the
    /// live cluster, ordered by start time. `(start, job)` pairs are unique,
    /// so the machine never participates in the ordering and the pop order
    /// matches the former `BTreeMap<(OrdTime, JobId), usize>` exactly.
    pending: BinaryHeap<Reverse<(OrdTime, JobId, usize)>>,
    /// Scratch for each epoch's placements, reused across iterations.
    placements: Vec<(JobId, usize, Time)>,
}

impl MrisOnline {
    /// An incremental MRIS policy for one run over `instance` on
    /// `num_machines` identical unit machines.
    pub fn new(config: MrisConfig, instance: &Instance, num_machines: usize) -> Self {
        Self::new_on(config, instance, &ClusterSpec::uniform(num_machines))
    }

    /// [`MrisOnline::new`] on an explicit cluster description: the committed
    /// timelines carry each machine's capacity and speed, so probes and
    /// commits account nominal work as `p / speed_m` wall time.
    pub fn new_on(config: MrisConfig, instance: &Instance, cluster: &ClusterSpec) -> Self {
        config.validate();
        let num_machines = cluster.len();
        assert!(num_machines > 0);
        // Same grid base as the offline pass: gamma_0 = min_proc (see
        // `Mris::schedule_with_log`); the value is irrelevant for an empty
        // instance but must be positive for the geometric grid.
        let gamma0 = if instance.is_empty() {
            1.0
        } else {
            instance.stats().min_proc
        };
        debug_assert!(gamma0 > 0.0);
        let solver: Box<dyn KnapsackSolver> = match config.knapsack {
            KnapsackChoice::Cadp => Box::new(Cadp::new(config.epsilon)),
            KnapsackChoice::Greedy => Box::new(GreedyConstraint),
            KnapsackChoice::GreedyHalf => Box::new(mris_knapsack::GreedyHalf),
            KnapsackChoice::Exact => Box::new(mris_knapsack::ExactDp::default()),
        };
        MrisOnline {
            config,
            solver,
            timelines: ClusterTimelines::with_spec(cluster, instance.num_resources()),
            num_machines,
            num_resources: instance.num_resources(),
            gamma0,
            gamma: gamma0,
            k: 0,
            state: EpochState::new(instance.len(), config.force_epoch_rebuild),
            pending: BinaryHeap::new(),
            placements: Vec::new(),
        }
    }

    /// One Algorithm 1 iteration at the current `gamma_k`: timeline
    /// compaction (the grid stage), then the shared incremental epoch body
    /// (`EpochState::run_epoch` — frontier advance, memoized knapsack with
    /// budget `zeta_k`, heuristic-ordered earliest-fit placement with floor
    /// `gamma_k`). Selected jobs leave the epoch state and enter `pending`;
    /// `gamma` always advances.
    fn run_iteration(&mut self, instance: &Instance) {
        let gamma = self.gamma;
        {
            let _s = mris_obs::span!("mris_epoch_grid_seconds");
            self.timelines.compact_before(gamma);
        }
        let zeta = (self.num_resources * self.num_machines) as f64 * gamma;
        self.placements.clear();
        self.state.run_epoch(
            instance,
            &mut self.timelines,
            self.solver.as_ref(),
            &self.config,
            gamma,
            zeta,
            &mut self.placements,
        );
        for &(j, m, s) in &self.placements {
            self.pending.push(Reverse((OrdTime(s), j, m)));
        }
        self.k += 1;
        self.gamma = self.gamma0 * self.config.alpha.powi(self.k as i32);
    }
}

impl OnlinePolicy for MrisOnline {
    fn on_arrivals(&mut self, now: Time, arrived: &[JobId], instance: &Instance) {
        // The driver delivers originals exactly at their release and
        // re-releases at the kill instant, so `now` is the right
        // availability either way.
        for &j in arrived {
            self.state.insert(j, instance.job(j).proc_time, now);
        }
    }

    fn dispatch(
        &mut self,
        d: &mut Dispatcher<'_>,
        _freed: &[usize],
    ) -> Result<(), SchedulingError> {
        let now = d.now();
        // Run every iteration whose gamma_k has arrived. When the queue was
        // empty the grid stalls; catch-up iterations for skipped gammas are
        // provably empty (everything available by those gammas was already
        // placed, and new arrivals have an eligibility threshold of at
        // least `now > gamma`), so no job is ever committed to a start in
        // the past.
        while !self.state.is_empty() && self.gamma <= now {
            self.run_iteration(d.instance());
        }
        // Realize committed starts that are due.
        while let Some(&Reverse((start, job, machine))) = self.pending.peek() {
            if start.0 > now {
                break;
            }
            self.pending.pop();
            if d.cluster().is_up(machine) {
                d.place(machine, job)?;
            } else {
                // Safety net: the failure hook re-queues commitments on a
                // failed machine, but a zero-demand job can still be
                // committed inside a downtime block (zero demand fits a
                // full machine). Re-plan it from now.
                self.state.insert(job, d.instance().job(job).proc_time, now);
            }
        }
        Ok(())
    }

    fn on_machine_failed(
        &mut self,
        now: Time,
        machine: usize,
        recover_at: Time,
        _killed: &[JobId],
        instance: &Instance,
    ) {
        // Orphans: committed to the failed machine but not yet started.
        // (Killed running jobs come back through on_arrivals.)
        let mut entries = std::mem::take(&mut self.pending).into_vec();
        let mut orphaned: u64 = 0;
        let state = &mut self.state;
        entries.retain(|&Reverse((_, job, m))| {
            if m == machine {
                orphaned += 1;
                state.insert(job, instance.job(job).proc_time, now);
                false
            } else {
                true
            }
        });
        self.pending = BinaryHeap::from(entries);
        mris_obs::counter_add("mris_chaos_orphaned_commitments_total", orphaned);
        // A failure rewrites availability mid-epoch; wipe the knapsack memo
        // rather than reason about which entries survive.
        self.state.invalidate_memo();
        // Truncate the machine's committed timeline — every interval on it
        // (past, running, planned) is invalidated at once — and block out
        // the downtime so future iterations cannot plan into it. The block
        // pins the *machine's own* capacity (not the global unit), and
        // `commit` is wall-time: downtime does not shrink on fast machines.
        self.timelines.reset_machine(machine);
        let full = self.timelines.capacity(machine).to_vec();
        self.timelines.commit(machine, now, recover_at - now, &full);
    }

    fn on_machine_recovered(&mut self, _now: Time, _machine: usize, _instance: &Instance) {
        // Recovery is the other half of the availability rewrite: the
        // machine's downtime block stops binding and placements that were
        // infeasible while it was pinned become feasible again. A memoized
        // knapsack selection computed while the machine was down can
        // therefore go stale the same way a failure staled the pre-failure
        // memo — wipe it here too instead of reasoning about which entries
        // survive. (The failure hook blocked the timeline only up to
        // `recover_at`, so the timeline itself needs no touch-up.)
        self.state.invalidate_memo();
    }

    fn next_wakeup(&self) -> Option<Time> {
        let grid = (!self.state.is_empty()).then_some(self.gamma);
        let realize = self.pending.peek().map(|&Reverse((s, _, _))| s.0);
        match (grid, realize) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn encode_durable_state(&self, out: &mut Vec<u8>) -> bool {
        out.extend_from_slice(&self.gamma0.to_bits().to_le_bytes());
        out.extend_from_slice(&self.gamma.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.k as u64).to_le_bytes());
        // Sorted, not heap order: the heap's layout depends on insertion
        // history, which snapshot verification must not be sensitive to.
        let mut pending: Vec<(u64, u32, u64)> = self
            .pending
            .iter()
            .map(|&Reverse((OrdTime(s), j, m))| (s.to_bits(), j.0, m as u64))
            .collect();
        pending.sort_unstable();
        out.extend_from_slice(&(pending.len() as u64).to_le_bytes());
        for (s, j, m) in pending {
            out.extend_from_slice(&s.to_le_bytes());
            out.extend_from_slice(&j.to_le_bytes());
            out.extend_from_slice(&m.to_le_bytes());
        }
        self.state.durable_bytes(out);
        self.timelines.durable_bytes(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mris;
    use mris_schedulers::Scheduler;
    use mris_sim::{run_online_chaos, FaultPlan};
    use mris_types::{FaultEvent, FaultTarget, Job, RestartSemantics};

    fn inst(jobs: Vec<Job>, r: usize) -> Instance {
        Instance::from_unnumbered(jobs, r).unwrap()
    }

    fn mixed_instance() -> Instance {
        inst(
            (0..24)
                .map(|i| {
                    Job::from_fractions(
                        JobId(0),
                        (i % 7) as f64 * 0.9,
                        1.0 + (i % 5) as f64,
                        1.0 + (i % 3) as f64,
                        &[0.1 + (i % 8) as f64 * 0.1, 0.05 * (i % 9) as f64],
                    )
                })
                .collect(),
            2,
        )
    }

    #[test]
    fn fault_free_run_matches_offline_mris() {
        let instance = mixed_instance();
        for machines in [1, 3] {
            let offline = Mris::default().schedule(&instance, machines);
            let mut policy = MrisOnline::new(MrisConfig::default(), &instance, machines);
            let outcome = run_online_chaos(
                &instance,
                machines,
                &mut policy,
                &FaultPlan::none(),
                RestartSemantics::FullRestart,
            )
            .unwrap();
            assert_eq!(outcome.schedule, offline, "machines = {machines}");
        }
    }

    #[test]
    fn fault_free_run_matches_offline_for_variant_configs() {
        let instance = mixed_instance();
        for config in [
            MrisConfig {
                knapsack: KnapsackChoice::Greedy,
                ..Default::default()
            },
            MrisConfig {
                backfill: false,
                ..Default::default()
            },
            MrisConfig {
                heuristic: mris_schedulers::SortHeuristic::Wsvf,
                ..Default::default()
            },
        ] {
            let offline = Mris::with_config(config).schedule(&instance, 2);
            let mut policy = MrisOnline::new(config, &instance, 2);
            let outcome = run_online_chaos(
                &instance,
                2,
                &mut policy,
                &FaultPlan::none(),
                RestartSemantics::FullRestart,
            )
            .unwrap();
            assert_eq!(outcome.schedule, offline, "{config:?}");
        }
    }

    #[test]
    fn survives_failures_and_replans_orphans() {
        let instance = mixed_instance();
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                at: 1.5,
                downtime: 3.0,
                target: FaultTarget::Machine(0),
            },
            FaultEvent {
                at: 4.0,
                downtime: 2.0,
                target: FaultTarget::Busiest,
            },
        ]);
        let mut policy = MrisOnline::new(MrisConfig::default(), &instance, 2);
        let outcome = run_online_chaos(
            &instance,
            2,
            &mut policy,
            &plan,
            RestartSemantics::FullRestart,
        )
        .unwrap();
        // Complete, feasible (run_online_chaos validated stranding already),
        // and consistent with the fault log.
        assert!(outcome.schedule.is_complete());
        outcome.log.verify().unwrap();
        assert!(!outcome.log.failures.is_empty());
        // No completed run overlaps a downtime *and* every start respects
        // release times.
        for a in outcome.schedule.assignments() {
            assert!(a.start >= instance.job(a.job).release);
        }
    }

    #[test]
    fn weight_aging_run_completes() {
        let instance = mixed_instance();
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: 2.0,
            downtime: 1.0,
            target: FaultTarget::Machine(1),
        }]);
        let mut policy = MrisOnline::new(MrisConfig::default(), &instance, 2);
        let outcome = run_online_chaos(
            &instance,
            2,
            &mut policy,
            &plan,
            RestartSemantics::WeightAging { factor: 2.0 },
        )
        .unwrap();
        assert!(outcome.schedule.is_complete());
        outcome.log.verify().unwrap();
    }

    #[test]
    fn empty_instance_is_fine() {
        let instance = Instance::new(vec![], 2).unwrap();
        let mut policy = MrisOnline::new(MrisConfig::default(), &instance, 3);
        let outcome = run_online_chaos(
            &instance,
            3,
            &mut policy,
            &FaultPlan::none(),
            RestartSemantics::FullRestart,
        )
        .unwrap();
        assert!(outcome.schedule.is_complete());
    }
}
