//! Shelf-based First-Fit-Decreasing placement for unit-length batches
//! (Remark 3).
//!
//! The paper notes that when all jobs have equal processing times, the
//! makespan subproblem becomes vector bin packing, for which much better
//! approximations exist than the `2R` of Lemma 6.3. This module implements
//! the classic first-fit-decreasing heuristic in *shelf* form: jobs sorted
//! by decreasing dominant demand are first-fit packed into shelves; each
//! shelf runs for the batch's common processing time, shelves are assigned
//! round-robin to machines and stacked in time.
//!
//! This is an **offline batch subroutine** like
//! [`place_batch`](crate::place_batch); it does not backfill into earlier
//! iterations' gaps, so on mixed workloads MRIS's default PQ subroutine is
//! usually preferable — the ablation bench quantifies the trade-off on
//! unit-job instances, where FFD's tighter packing wins.

use mris_sim::ClusterTimelines;
use mris_types::{Amount, Instance, JobId, Time, CAPACITY};

/// Places a batch of jobs with (approximately) equal processing times using
/// shelf-based FFD vector packing, committing onto `timelines` starting no
/// earlier than `floor` (and no earlier than each machine's current
/// horizon). Returns placements in batch order.
///
/// Panics if the batch is empty-safe (returns empty) — jobs may have
/// unequal processing times, in which case every shelf runs for the longest
/// processing time among its members (correct, but wasteful; intended for
/// unit-time batches).
pub fn place_batch_ffd(
    timelines: &mut ClusterTimelines,
    instance: &Instance,
    batch: &[JobId],
    floor: Time,
) -> Vec<(JobId, usize, Time)> {
    if batch.is_empty() {
        return Vec::new();
    }
    let r = instance.num_resources();

    // Sort by decreasing dominant demand (FFD order), ties by id.
    let mut order: Vec<JobId> = batch.to_vec();
    order.sort_by(|&a, &b| {
        let da = instance.job(a).demands.iter().copied().max().unwrap_or(0);
        let db = instance.job(b).demands.iter().copied().max().unwrap_or(0);
        db.cmp(&da).then(a.cmp(&b))
    });

    // First-fit into shelves.
    struct Shelf {
        usage: Vec<Amount>,
        jobs: Vec<JobId>,
        span: Time,
    }
    let mut shelves: Vec<Shelf> = Vec::new();
    'jobs: for &id in &order {
        let job = instance.job(id);
        for shelf in shelves.iter_mut() {
            if shelf
                .usage
                .iter()
                .zip(job.demands.iter())
                .all(|(&u, &d)| u + d <= CAPACITY)
            {
                for (u, &d) in shelf.usage.iter_mut().zip(job.demands.iter()) {
                    *u += d;
                }
                shelf.jobs.push(id);
                shelf.span = shelf.span.max(job.proc_time);
                continue 'jobs;
            }
        }
        shelves.push(Shelf {
            usage: job.demands.to_vec(),
            jobs: vec![id],
            span: job.proc_time,
        });
    }

    // Stack shelves round-robin across machines, each starting at the later
    // of `floor` and the machine's committed horizon, then commit.
    let machines = timelines.num_machines();
    let mut next_start: Vec<Time> = (0..machines)
        .map(|m| {
            let tl = timelines.machine(m);
            // Earliest instant >= floor at which the machine is idle forever
            // (shelves need exclusive stacking, so start after everything
            // committed): query with a full-capacity probe of tiny duration.
            let full = vec![CAPACITY; r];
            tl.earliest_fit(floor, f64::MIN_POSITIVE.max(1e-9), &full)
        })
        .collect();

    let mut placements = Vec::with_capacity(batch.len());
    for (i, shelf) in shelves.iter().enumerate() {
        let m = i % machines;
        let start = next_start[m];
        for &id in &shelf.jobs {
            let job = instance.job(id);
            timelines.commit(m, start, job.proc_time, &job.demands);
            placements.push((id, m, start));
        }
        next_start[m] = start + shelf.span;
    }
    // Return in batch order for parity with `place_batch`.
    placements.sort_by_key(|&(id, _, _)| batch.iter().position(|&b| b == id).unwrap_or(usize::MAX));
    placements
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::{Job, Schedule};

    fn unit_instance(demands: &[f64]) -> Instance {
        let jobs = demands
            .iter()
            .map(|&d| Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[d]))
            .collect();
        Instance::from_unnumbered(jobs, 1).unwrap()
    }

    fn validate(instance: &Instance, placements: &[(JobId, usize, Time)], machines: usize) {
        let mut s = Schedule::new(instance.len(), machines);
        for &(j, m, start) in placements {
            s.assign(j, m, start).unwrap();
        }
        s.validate(instance).unwrap();
    }

    #[test]
    fn packs_complementary_unit_jobs_into_one_shelf() {
        let instance = unit_instance(&[0.7, 0.3, 0.5, 0.5]);
        let batch: Vec<JobId> = instance.jobs().iter().map(|j| j.id).collect();
        let mut tl = ClusterTimelines::new(1, 1);
        let placements = place_batch_ffd(&mut tl, &instance, &batch, 0.0);
        validate(&instance, &placements, 1);
        // FFD: 0.7+0.3 in shelf 0, 0.5+0.5 in shelf 1 -> makespan 2.
        let makespan = placements
            .iter()
            .map(|&(j, _, s)| s + instance.job(j).proc_time)
            .fold(0.0_f64, f64::max);
        assert!((makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn beats_naive_order_on_ffd_friendly_input() {
        // 0.6-jobs and 0.4-jobs: FFD pairs them perfectly (one of each per
        // shelf); a bad arrival order under first-fit-without-sorting packs
        // 0.4s together and strands 0.6s.
        let mut demands = vec![0.4; 4];
        demands.extend(vec![0.6; 4]);
        let instance = unit_instance(&demands);
        let batch: Vec<JobId> = instance.jobs().iter().map(|j| j.id).collect();
        let mut tl = ClusterTimelines::new(1, 1);
        let placements = place_batch_ffd(&mut tl, &instance, &batch, 0.0);
        validate(&instance, &placements, 1);
        let makespan = placements
            .iter()
            .map(|&(j, _, s)| s + instance.job(j).proc_time)
            .fold(0.0_f64, f64::max);
        assert!((makespan - 4.0).abs() < 1e-9, "got {makespan}");
    }

    #[test]
    fn respects_floor_and_existing_commitments() {
        let instance = unit_instance(&[0.9, 0.9]);
        let batch: Vec<JobId> = instance.jobs().iter().map(|j| j.id).collect();
        let mut tl = ClusterTimelines::new(1, 1);
        tl.commit(0, 0.0, 5.0, &[mris_types::amount_from_fraction(0.5)]);
        let placements = place_batch_ffd(&mut tl, &instance, &batch, 2.0);
        validate(&instance, &placements, 1);
        for &(_, _, start) in &placements {
            // Can't overlap the 0.5-usage window [0, 5): starts at >= 5.
            assert!(start >= 5.0, "start {start}");
        }
    }

    #[test]
    fn spreads_shelves_across_machines() {
        let instance = unit_instance(&[0.9, 0.9, 0.9, 0.9]);
        let batch: Vec<JobId> = instance.jobs().iter().map(|j| j.id).collect();
        let mut tl = ClusterTimelines::new(2, 1);
        let placements = place_batch_ffd(&mut tl, &instance, &batch, 0.0);
        validate(&instance, &placements, 2);
        // Four singleton shelves over two machines: makespan 2, both used.
        let makespan = placements
            .iter()
            .map(|&(j, _, s)| s + instance.job(j).proc_time)
            .fold(0.0_f64, f64::max);
        assert!((makespan - 2.0).abs() < 1e-9);
        assert!(placements.iter().any(|&(_, m, _)| m == 0));
        assert!(placements.iter().any(|&(_, m, _)| m == 1));
    }

    #[test]
    fn empty_batch() {
        let instance = unit_instance(&[0.5]);
        let mut tl = ClusterTimelines::new(1, 1);
        assert!(place_batch_ffd(&mut tl, &instance, &[], 0.0).is_empty());
    }
}
