//! Algorithm registry: the one place that maps names to schedulers.
//!
//! Every front end — the `mris` CLI, the figure binaries, and the bench
//! harness — resolves algorithms through this module, so adding an
//! algorithm (or renaming one) is a one-place change.

use crate::{KnapsackChoice, Mris, MrisConfig, MrisOnline};
use mris_schedulers::{
    BfExec, BfExecPolicy, CaPq, CaPqPolicy, Pq, PqPolicy, Scheduler, SortHeuristic, Tetris,
    TetrisPolicy,
};
use mris_sim::OnlinePolicy;
use mris_types::{ClusterSpec, Instance, RegistryError, WorkloadFeature};

/// Names accepted by [`algorithm_by_name`], with a short description each.
pub fn known_algorithms() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "mris",
            "MRIS with CADP knapsack and WSJF order (the paper's default)",
        ),
        (
            "mris-greedy",
            "MRIS with the Remark 1 constraint greedy (16R-competitive)",
        ),
        (
            "mris-greedy-half",
            "MRIS with the capacity-respecting half-budget greedy",
        ),
        (
            "mris-exact",
            "MRIS with the exact pseudo-polynomial knapsack (reference)",
        ),
        (
            "mris-<heuristic>",
            "MRIS with another queue order, e.g. mris-wsvf",
        ),
        (
            "pq-<heuristic>",
            "Priority-Queue, e.g. pq-wsjf, pq-svf, pq-erf",
        ),
        ("tetris", "non-preemptive Tetris adaptation"),
        (
            "bf-exec",
            "BF-EXEC (best fit on arrival, SJF backfill on departure)",
        ),
        (
            "ca-pq",
            "Collect-All PQ (waits for the last release, then WSJF)",
        ),
    ]
}

/// Every concrete name the registry resolves, for did-you-mean suggestions:
/// the fixed names plus both heuristic families expanded over every
/// [`SortHeuristic`] label.
fn suggestion_candidates() -> Vec<String> {
    let mut out: Vec<String> = [
        "mris",
        "mris-greedy",
        "mris-greedy-half",
        "mris-exact",
        "tetris",
        "bf-exec",
        "ca-pq",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for h in SortHeuristic::ALL_EXTENDED {
        out.push(format!("pq-{}", h.label().to_ascii_lowercase()));
        out.push(format!("mris-{}", h.label().to_ascii_lowercase()));
    }
    out
}

/// The typed error every resolver returns for an unrecognised name.
fn unknown(name: &str) -> RegistryError {
    RegistryError::unknown_algorithm(
        name,
        known_algorithms().iter().map(|(n, _)| *n).collect(),
        suggestion_candidates(),
    )
}

/// Maps a heuristic-suffix parse failure into the typed registry error.
fn bad_heuristic(name: &str, detail: String) -> RegistryError {
    RegistryError::UnknownHeuristic {
        name: name.to_string(),
        detail,
    }
}

/// Resolves an algorithm name (case-insensitive). Heuristic suffixes accept
/// every [`SortHeuristic`] label, e.g. `pq-wsvf` or `mris-sjf`.
pub fn algorithm_by_name(name: &str) -> Result<Box<dyn Scheduler>, RegistryError> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "mris" => return Ok(Box::new(Mris::default())),
        "mris-greedy" => {
            return Ok(Box::new(Mris::with_config(MrisConfig {
                knapsack: KnapsackChoice::Greedy,
                ..Default::default()
            })))
        }
        "mris-greedy-half" => {
            return Ok(Box::new(Mris::with_config(MrisConfig {
                knapsack: KnapsackChoice::GreedyHalf,
                ..Default::default()
            })))
        }
        "mris-exact" => {
            return Ok(Box::new(Mris::with_config(MrisConfig {
                knapsack: KnapsackChoice::Exact,
                ..Default::default()
            })))
        }
        "tetris" => return Ok(Box::new(Tetris::default())),
        "bf-exec" | "bfexec" => return Ok(Box::new(BfExec)),
        "ca-pq" | "capq" => return Ok(Box::new(CaPq::default())),
        _ => {}
    }
    if let Some(suffix) = lower.strip_prefix("pq-") {
        let heuristic: SortHeuristic = suffix.parse().map_err(|e| bad_heuristic(name, e))?;
        return Ok(Box::new(Pq::new(heuristic)));
    }
    if let Some(suffix) = lower.strip_prefix("mris-") {
        let heuristic: SortHeuristic = suffix.parse().map_err(|e| bad_heuristic(name, e))?;
        return Ok(Box::new(Mris::with_config(MrisConfig {
            heuristic,
            ..Default::default()
        })));
    }
    Err(unknown(name))
}

/// Resolves the same names as [`algorithm_by_name`] into *stateful*
/// [`OnlinePolicy`] instances for the event-driven and fault-injection
/// drivers ([`mris_sim::run_online`], [`mris_sim::run_online_chaos`]).
///
/// Unlike [`algorithm_by_name`], this takes the instance and machine count:
/// the policies are constructed per run (MRIS sizes its grid and timelines;
/// CA-PQ receives the oracle gate, the instance's last release time). The
/// returned policy, driven fault-free, reproduces the boxed scheduler's
/// schedule exactly — pinned by the chaos determinism suite.
pub fn online_policy_by_name(
    name: &str,
    instance: &Instance,
    num_machines: usize,
) -> Result<Box<dyn OnlinePolicy>, RegistryError> {
    online_policy_on(name, instance, &ClusterSpec::uniform(num_machines))
}

/// [`online_policy_by_name`] over an explicit [`ClusterSpec`]: MRIS sizes
/// its committed timelines off the spec's per-machine capacities and
/// speeds; the reactive policies carry no cluster state of their own.
///
/// No capability check happens here — use [`online_policy_for_workload`]
/// when the (algorithm, workload) pair comes from user input.
pub fn online_policy_on(
    name: &str,
    instance: &Instance,
    cluster: &ClusterSpec,
) -> Result<Box<dyn OnlinePolicy>, RegistryError> {
    let lower = name.to_ascii_lowercase();
    let mris = |config: MrisConfig| -> Box<dyn OnlinePolicy> {
        Box::new(MrisOnline::new_on(config, instance, cluster))
    };
    match lower.as_str() {
        "mris" => return Ok(mris(MrisConfig::default())),
        "mris-greedy" => {
            return Ok(mris(MrisConfig {
                knapsack: KnapsackChoice::Greedy,
                ..Default::default()
            }))
        }
        "mris-greedy-half" => {
            return Ok(mris(MrisConfig {
                knapsack: KnapsackChoice::GreedyHalf,
                ..Default::default()
            }))
        }
        "mris-exact" => {
            return Ok(mris(MrisConfig {
                knapsack: KnapsackChoice::Exact,
                ..Default::default()
            }))
        }
        "tetris" => return Ok(Box::new(TetrisPolicy::new(Tetris::default().eps))),
        "bf-exec" | "bfexec" => return Ok(Box::new(BfExecPolicy::new())),
        "ca-pq" | "capq" => {
            return Ok(Box::new(CaPqPolicy::new(
                SortHeuristic::Wsjf,
                instance.stats().max_release,
            )))
        }
        _ => {}
    }
    if let Some(suffix) = lower.strip_prefix("pq-") {
        let heuristic: SortHeuristic = suffix.parse().map_err(|e| bad_heuristic(name, e))?;
        return Ok(Box::new(PqPolicy::new(heuristic)));
    }
    if let Some(suffix) = lower.strip_prefix("mris-") {
        let heuristic: SortHeuristic = suffix.parse().map_err(|e| bad_heuristic(name, e))?;
        return Ok(mris(MrisConfig {
            heuristic,
            ..Default::default()
        }));
    }
    Err(unknown(name))
}

/// Rejects a resolved algorithm whose capability flags do not cover the
/// workload: precedence edges on `instance`, non-uniform machines in
/// `cluster`. The typed error replaces the old failure mode — a scheduler
/// that silently ignored the feature and returned a wrong-looking-right
/// schedule.
fn check_capabilities(
    name: &str,
    algo: &dyn Scheduler,
    instance: &Instance,
    cluster: &ClusterSpec,
) -> Result<(), RegistryError> {
    if instance.has_precedence() && !algo.supports_precedence() {
        return Err(RegistryError::Unsupported {
            algorithm: name.to_string(),
            feature: WorkloadFeature::Precedence,
        });
    }
    if !cluster.is_uniform() && !algo.supports_heterogeneous() {
        return Err(RegistryError::Unsupported {
            algorithm: name.to_string(),
            feature: WorkloadFeature::HeterogeneousMachines,
        });
    }
    Ok(())
}

/// [`algorithm_by_name`] plus a capability check against the workload the
/// caller is about to schedule. Front ends that accept arbitrary
/// (algorithm, instance, cluster) triples resolve through this so an
/// unsupported pair fails with [`RegistryError::Unsupported`] up front.
pub fn algorithm_for_workload(
    name: &str,
    instance: &Instance,
    cluster: &ClusterSpec,
) -> Result<Box<dyn Scheduler>, RegistryError> {
    let algo = algorithm_by_name(name)?;
    check_capabilities(name, algo.as_ref(), instance, cluster)?;
    Ok(algo)
}

/// [`online_policy_by_name`] over an explicit [`ClusterSpec`], with the same
/// capability check as [`algorithm_for_workload`]. The boxed-scheduler and
/// online-policy registries resolve the same names to the same algorithms,
/// so the flags are read off the boxed form.
pub fn online_policy_for_workload(
    name: &str,
    instance: &Instance,
    cluster: &ClusterSpec,
) -> Result<Box<dyn OnlinePolicy>, RegistryError> {
    let algo = algorithm_by_name(name)?;
    check_capabilities(name, algo.as_ref(), instance, cluster)?;
    online_policy_on(name, instance, cluster)
}

/// Resolves a list of names in order; fails on the first unknown name.
pub fn algorithms_by_names<I, S>(names: I) -> Result<Vec<Box<dyn Scheduler>>, RegistryError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    names
        .into_iter()
        .map(|n| algorithm_by_name(n.as_ref()))
        .collect()
}

/// The standard comparison set (Figures 3/4): MRIS, PQ-WSJF, PQ-WSVF,
/// Tetris, BF-EXEC, CA-PQ.
pub fn comparison_algorithms() -> Vec<Box<dyn Scheduler>> {
    algorithms_by_names(["mris", "pq-wsjf", "pq-wsvf", "tetris", "bf-exec", "ca-pq"])
        .expect("built-in comparison names resolve")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_all_documented_names() {
        for name in [
            "mris",
            "mris-greedy",
            "mris-greedy-half",
            "mris-exact",
            "tetris",
            "bf-exec",
            "ca-pq",
        ] {
            assert!(algorithm_by_name(name).is_ok(), "{name}");
        }
        assert_eq!(algorithm_by_name("pq-wsjf").unwrap().name(), "PQ-WSJF");
        assert_eq!(algorithm_by_name("PQ-SVF").unwrap().name(), "PQ-SVF");
        assert_eq!(algorithm_by_name("mris-erf").unwrap().name(), "MRIS-ERF");
        // "mris-exact" is an exact-match name, not a heuristic suffix.
        assert_eq!(
            algorithm_by_name("mris-exact").unwrap().name(),
            "MRIS-EXACT-WSJF"
        );
    }

    #[test]
    fn rejects_unknown_names() {
        assert!(algorithm_by_name("sjf-first").is_err());
        assert!(algorithm_by_name("pq-nope").is_err());
    }

    #[test]
    fn every_heuristic_suffix_resolves() {
        use mris_schedulers::SortHeuristic;
        for h in SortHeuristic::ALL_EXTENDED {
            let pq = algorithm_by_name(&format!("pq-{}", h.label())).unwrap();
            assert_eq!(pq.name(), format!("PQ-{h}"));
            let mris = algorithm_by_name(&format!("mris-{}", h.label())).unwrap();
            assert_eq!(mris.name(), format!("MRIS-{h}"));
        }
    }

    #[test]
    fn error_lists_known_algorithms() {
        let err = algorithm_by_name("whatever")
            .err()
            .expect("must fail")
            .to_string();
        assert!(err.contains("mris") && err.contains("tetris"), "{err}");
    }

    #[test]
    fn error_suggests_nearby_name() {
        match algorithm_by_name("tetriss").err().expect("must fail") {
            mris_types::RegistryError::UnknownAlgorithm { suggestion, .. } => {
                assert_eq!(suggestion.as_deref(), Some("tetris"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        // A typo'd heuristic suffix gets the heuristic-specific error.
        match algorithm_by_name("pq-nope").err().expect("must fail") {
            mris_types::RegistryError::UnknownHeuristic { name, detail } => {
                assert_eq!(name, "pq-nope");
                assert!(detail.contains("heuristic"), "{detail}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn batch_resolution_is_ordered_and_fails_fast() {
        let algos = algorithms_by_names(["mris", "tetris"]).unwrap();
        assert_eq!(algos[0].name(), "MRIS-WSJF");
        assert_eq!(algos[1].name(), "TETRIS");
        assert!(algorithms_by_names(["mris", "nope"]).is_err());
    }

    #[test]
    fn online_policies_resolve_for_all_comparison_names() {
        use mris_types::{Job, JobId};
        let jobs = vec![
            Job::from_fractions(JobId(0), 0.0, 2.0, 1.0, &[0.5]),
            Job::from_fractions(JobId(1), 1.0, 1.0, 2.0, &[0.25]),
        ];
        let instance = Instance::new(jobs, 1).unwrap();
        for name in ["mris", "pq-wsjf", "pq-wsvf", "tetris", "bf-exec", "ca-pq"] {
            let mut policy = online_policy_by_name(name, &instance, 2).unwrap();
            let schedule = mris_sim::run_online(&instance, 2, policy.as_mut()).unwrap();
            schedule.validate(&instance).unwrap();
        }
        assert!(online_policy_by_name("nope", &instance, 2).is_err());
    }

    #[test]
    fn capability_check_rejects_unsupported_pairs() {
        use mris_types::{InstanceBuilder, Job, JobId};
        let mut b = InstanceBuilder::new(1);
        let a = b.push_job(0.0, 1.0, 1.0, &[0.5]);
        let c = b.push_job(0.0, 1.0, 1.0, &[0.5]);
        b.edge(a, c);
        let dag = b.build().unwrap();
        let uniform = ClusterSpec::uniform(2);
        let related = ClusterSpec::related(2, &[1.0, 2.0]);

        // CA-PQ opts out of precedence; everything else in the comparison
        // set supports both families.
        match algorithm_for_workload("ca-pq", &dag, &uniform) {
            Err(RegistryError::Unsupported { algorithm, feature }) => {
                assert_eq!(algorithm, "ca-pq");
                assert_eq!(feature, WorkloadFeature::Precedence);
            }
            Err(other) => panic!("expected Unsupported, got {other:?}"),
            Ok(_) => panic!("expected Unsupported, got Ok"),
        }
        assert!(online_policy_for_workload("ca-pq", &dag, &uniform).is_err());
        for name in ["mris", "pq-wsjf", "pq-wsvf", "tetris", "bf-exec"] {
            assert!(algorithm_for_workload(name, &dag, &related).is_ok(), "{name}");
            assert!(
                online_policy_for_workload(name, &dag, &related).is_ok(),
                "{name}"
            );
        }
        // CA-PQ stays fine on edge-free heterogeneous workloads.
        let flat = Instance::new(
            vec![Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.5])],
            1,
        )
        .unwrap();
        assert!(algorithm_for_workload("ca-pq", &flat, &related).is_ok());
        // Unknown names still surface as UnknownAlgorithm, not Unsupported.
        assert!(matches!(
            algorithm_for_workload("nope", &dag, &uniform),
            Err(RegistryError::UnknownAlgorithm { .. })
        ));
    }

    #[test]
    fn comparison_set_matches_figures_3_and_4() {
        let names: Vec<String> = comparison_algorithms().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            [
                "MRIS-WSJF",
                "PQ-WSJF",
                "PQ-WSVF",
                "TETRIS",
                "BF-EXEC",
                "CA-PQ-WSJF"
            ]
        );
    }
}
