//! Deadline-constrained weight maximization (the paper's second
//! future-work direction, Section 8: "A scheduler that jointly maximizes
//! the total weight given a deadline can also be considered").
//!
//! Given a batch of released jobs and a deadline `D`, select a subset of
//! maximum weight that is **guaranteed** to complete within `D`, and
//! schedule it. The guarantee composes the paper's own machinery:
//!
//! * only jobs with `p_j <= D/2` are eligible (Lemma 6.3's `2 p_max` term);
//! * the knapsack volume budget is `zeta = M * D / (2 * (1 + eps))`, so the
//!   CADP selection's volume is at most `M * D / 2` (Lemma 6.1);
//! * Priority-Queue placement then finishes by
//!   `max(2 p_max, 2 V / M) <= D` (Lemma 6.3).
//!
//! The selection's weight is at least the optimal knapsack weight at the
//! reduced budget `zeta`. Since any set completable by `D` has volume at
//! most `R * M * D` (Lemma 6.2), the scheme is a *bi-criteria*
//! approximation: it matches or beats every adversary restricted to
//! `2R(1 + eps)` times less volume. An exact weight guarantee against the
//! unrestricted deadline-optimum would require solving the NP-hard
//! scheduling problem itself.

use mris_knapsack::{Cadp, Item, KnapsackSolver};
use mris_sim::ClusterTimelines;
use mris_types::{Instance, JobId, Schedule, Time};

use crate::backfill::place_batch;

/// Outcome of [`max_weight_by_deadline`].
#[derive(Debug, Clone)]
pub struct DeadlineSelection {
    /// The selected jobs, in instance order.
    pub selected: Vec<JobId>,
    /// Their total weight.
    pub weight: f64,
    /// A schedule of exactly the selected jobs (other jobs unassigned),
    /// with every completion at or before the deadline.
    pub schedule: Schedule,
    /// The latest completion among selected jobs (0 if none).
    pub makespan: Time,
}

/// Selects a maximum-weight deadline-feasible subset of `batch` (released
/// jobs, scheduled from time 0) and schedules it on `machines` empty
/// machines so that every selected job completes by `deadline`.
///
/// `epsilon` is the CADP constraint-approximation parameter in `(0, 1)`.
/// Panics if `deadline <= 0` or `epsilon` is out of range.
pub fn max_weight_by_deadline(
    instance: &Instance,
    machines: usize,
    batch: &[JobId],
    deadline: Time,
    epsilon: f64,
) -> DeadlineSelection {
    assert!(deadline > 0.0 && deadline.is_finite());
    assert!(machines > 0);
    // Eligibility: the 2*p_max term of Lemma 6.3 must stay within D.
    let eligible: Vec<JobId> = batch
        .iter()
        .copied()
        .filter(|&j| instance.job(j).proc_time <= deadline / 2.0)
        .collect();

    // Volume budget such that CADP's (1 + eps) overshoot still satisfies
    // 2 V / M <= D.
    let zeta = machines as f64 * deadline / (2.0 * (1.0 + epsilon));
    let items: Vec<Item> = eligible
        .iter()
        .map(|&j| {
            let job = instance.job(j);
            Item::new(job.weight, job.volume())
        })
        .collect();
    let solution = Cadp::new(epsilon).solve(&items, zeta);
    let mut selected: Vec<JobId> = solution.selected.iter().map(|&i| eligible[i]).collect();
    selected.sort_unstable();

    // Place with the PQ makespan subroutine (shortest-job order, though any
    // order satisfies the Lemma 6.3 bound).
    let mut order = selected.clone();
    order.sort_by(|&a, &b| {
        instance
            .job(a)
            .proc_time
            .total_cmp(&instance.job(b).proc_time)
            .then(a.cmp(&b))
    });
    let mut timelines = ClusterTimelines::new(machines, instance.num_resources());
    let placements = place_batch(&mut timelines, instance, &order, 0.0);

    let mut schedule = Schedule::new(instance.len(), machines);
    let mut makespan: Time = 0.0;
    for &(j, m, start) in &placements {
        schedule.assign(j, m, start).expect("each job placed once");
        makespan = makespan.max(start + instance.job(j).proc_time);
    }
    debug_assert!(
        makespan <= deadline + 1e-9,
        "Lemma 6.3 guarantee violated: {makespan} > {deadline}"
    );
    DeadlineSelection {
        weight: solution.weight,
        selected,
        schedule,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::Job;

    fn inst(jobs: Vec<Job>, r: usize) -> Instance {
        Instance::from_unnumbered(jobs, r).unwrap()
    }

    fn ids(instance: &Instance) -> Vec<JobId> {
        instance.jobs().iter().map(|j| j.id).collect()
    }

    #[test]
    fn completes_selection_within_deadline() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| {
                Job::from_fractions(
                    JobId(0),
                    0.0,
                    1.0 + (i % 4) as f64,
                    1.0 + (i % 3) as f64,
                    &[0.2 + 0.05 * (i % 5) as f64, 0.3],
                )
            })
            .collect();
        let instance = inst(jobs, 2);
        for deadline in [2.0, 5.0, 10.0, 50.0] {
            let sel = max_weight_by_deadline(&instance, 2, &ids(&instance), deadline, 0.5);
            assert!(
                sel.makespan <= deadline + 1e-9,
                "deadline {deadline}: makespan {}",
                sel.makespan
            );
            // Every selected job is actually assigned; others are not.
            for job in instance.jobs() {
                assert_eq!(
                    sel.schedule.get(job.id).is_some(),
                    sel.selected.contains(&job.id)
                );
            }
        }
    }

    #[test]
    fn weight_is_monotone_in_deadline() {
        let jobs: Vec<Job> = (0..15)
            .map(|i| Job::from_fractions(JobId(0), 0.0, 1.0 + (i % 3) as f64, 1.0, &[0.25, 0.25]))
            .collect();
        let instance = inst(jobs, 2);
        let mut last = -1.0;
        for deadline in [2.0, 4.0, 8.0, 16.0, 64.0] {
            let sel = max_weight_by_deadline(&instance, 1, &ids(&instance), deadline, 0.5);
            assert!(
                sel.weight >= last - 1e-9,
                "weight dropped at deadline {deadline}"
            );
            last = sel.weight;
        }
        // A generous deadline takes everything.
        assert!((last - instance.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn long_jobs_are_never_selected() {
        let jobs = vec![
            Job::from_fractions(JobId(0), 0.0, 10.0, 100.0, &[0.1]),
            Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.1]),
        ];
        let instance = inst(jobs, 1);
        let sel = max_weight_by_deadline(&instance, 1, &ids(&instance), 4.0, 0.5);
        // The heavy job has p > D/2: ineligible despite its weight.
        assert_eq!(sel.selected, vec![JobId(1)]);
    }

    #[test]
    fn schedule_is_feasible_when_selection_is_total() {
        let jobs: Vec<Job> = (0..8)
            .map(|_| Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.4]))
            .collect();
        let instance = inst(jobs, 1);
        let sel = max_weight_by_deadline(&instance, 2, &ids(&instance), 100.0, 0.5);
        assert_eq!(sel.selected.len(), 8);
        sel.schedule.validate(&instance).unwrap();
    }

    #[test]
    fn empty_batch_and_tight_deadline() {
        let jobs = vec![Job::from_fractions(JobId(0), 0.0, 5.0, 1.0, &[0.5])];
        let instance = inst(jobs, 1);
        let sel = max_weight_by_deadline(&instance, 1, &[], 10.0, 0.5);
        assert!(sel.selected.is_empty());
        // Deadline too tight for the only job (p > D/2).
        let sel = max_weight_by_deadline(&instance, 1, &ids(&instance), 6.0, 0.5);
        assert!(sel.selected.is_empty());
        assert_eq!(sel.makespan, 0.0);
    }
}
