//! MRIS: Multi-Resource Interval Scheduling (Algorithm 1 of the paper).
//!
//! MRIS is a deterministic online algorithm for non-preemptive scheduling of
//! multi-resource jobs on `M` identical machines that is `8R(1 + eps)`-
//! competitive for the average weighted completion time (Theorem 6.8) and —
//! simultaneously — for the makespan (Lemma 6.9).
//!
//! The algorithm runs in iterations over a geometric time grid
//! `gamma_k = gamma_0 * alpha^k` (`alpha = 2` in the paper):
//!
//! 1. at wall-clock `gamma_k`, collect `J_k`, the unscheduled jobs with
//!    `r_j <= gamma_k` and `p_j <= gamma_k`;
//! 2. select `B_k ⊆ J_k` of maximum weight subject to total *volume*
//!    `sum v_j <= zeta_k = R * M * gamma_k` (problem **P1**), using a
//!    constraint-approximate knapsack ([`mris_knapsack::Cadp`] by default,
//!    [`mris_knapsack::GreedyConstraint`] for `MRIS-GREEDY`);
//! 3. place `B_k` with the Priority-Queue makespan subroutine
//!    ([`place_batch`]): jobs in heuristic order, each at the earliest
//!    feasible instant `>= gamma_k` on any machine, *backfilling* into gaps
//!    left by earlier iterations.
//!
//! See [`Mris`] for the scheduler and [`MrisConfig`] for the knobs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod backfill;
mod config;
mod deadline;
mod epoch;
mod ffd;
pub mod online;
mod oracle;
pub mod registry;

pub use algorithm::{IterationStats, Mris};
pub use backfill::{batch_makespan_bound, place_batch};
pub use config::{KnapsackChoice, MrisConfig};
pub use deadline::{max_weight_by_deadline, DeadlineSelection};
pub use ffd::place_batch_ffd;
pub use online::MrisOnline;
pub use oracle::{best_list_schedule, list_schedule};
pub use registry::{
    algorithm_by_name, algorithm_for_workload, algorithms_by_names, comparison_algorithms,
    known_algorithms, online_policy_by_name, online_policy_for_workload, online_policy_on,
};
