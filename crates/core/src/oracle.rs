//! Small-instance oracle: the best *list schedule* over all job
//! permutations.
//!
//! Computing the true offline optimum is NP-hard (Section 1 of the paper),
//! but for tiny instances an exhaustive search over priority orders — each
//! placed with earliest-fit list scheduling — yields a feasible schedule
//! whose objective tightly **upper-bounds** OPT. The theory tests use it to
//! sharpen the Theorem 6.8 ceiling check: `AWCT(MRIS) <= 8R(1+eps) * OPT
//! <= 8R(1+eps) * best_list_schedule(...)`.
//!
//! Note the oracle is *not* OPT itself: optimal schedules may idle
//! deliberately in ways no list order expresses. It is a strictly tighter
//! stand-in than any single heuristic's schedule.

use mris_sim::ClusterTimelines;
use mris_types::{Instance, JobId, Schedule, Time};

/// Returns the minimum-AWCT list schedule over **all permutations** of the
/// instance's jobs (each permutation placed greedily: every job at its
/// earliest feasible start `>= r_j`, in order, on the earliest machine).
///
/// Complexity `O(N! * N * M * segments)` — panics for `N > 9`.
pub fn best_list_schedule(instance: &Instance, machines: usize) -> Schedule {
    assert!(
        instance.len() <= 9,
        "best_list_schedule is exhaustive; use <= 9 jobs"
    );
    let mut order: Vec<JobId> = instance.jobs().iter().map(|j| j.id).collect();
    let mut best: Option<(f64, Schedule)> = None;
    permute(&mut order, 0, &mut |perm| {
        let schedule = list_schedule(instance, machines, perm);
        let awct = schedule.awct(instance);
        if best.as_ref().is_none_or(|(b, _)| awct < *b) {
            best = Some((awct, schedule));
        }
    });
    best.expect("non-empty instance").1
}

/// Places jobs in the given order, each at its earliest feasible start at or
/// after its release (list scheduling with backfilling).
pub fn list_schedule(instance: &Instance, machines: usize, order: &[JobId]) -> Schedule {
    let mut timelines = ClusterTimelines::new(machines, instance.num_resources());
    let mut schedule = Schedule::new(instance.len(), machines);
    for &id in order {
        let job = instance.job(id);
        let (m, start): (usize, Time) = timelines.place_earliest(job, job.release);
        schedule.assign(id, m, start).expect("each job placed once");
    }
    schedule
}

/// Heap's algorithm, calling `visit` for each permutation of `items`.
fn permute<T, F: FnMut(&[T])>(items: &mut [T], k: usize, visit: &mut F) {
    let n = items.len();
    if k == n {
        visit(items);
        return;
    }
    for i in k..n {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::Job;

    fn inst(jobs: Vec<Job>, r: usize) -> Instance {
        Instance::from_unnumbered(jobs, r).unwrap()
    }

    #[test]
    fn oracle_skips_the_lemma_4_1_blocker() {
        // 1 machine: blocker (p=5, d=1) at t=0; 4 small jobs at t=0.1. The
        // best list order runs the small jobs first.
        let mut jobs = vec![Job::from_fractions(JobId(0), 0.0, 5.0, 1.0, &[1.0])];
        for _ in 0..4 {
            jobs.push(Job::from_fractions(JobId(0), 0.1, 1.0, 1.0, &[0.25]));
        }
        let instance = inst(jobs, 1);
        let best = best_list_schedule(&instance, 1);
        best.validate(&instance).unwrap();
        // Small jobs at 0.1, blocker at 1.1: AWCT = (6.1 + 4 * 1.1) / 5.
        assert!((best.awct(&instance) - (6.1 + 4.0 * 1.1) / 5.0).abs() < 1e-9);
    }

    #[test]
    fn oracle_beats_every_single_heuristic() {
        use mris_schedulers::{Pq, Scheduler, SortHeuristic};
        let jobs = vec![
            Job::from_fractions(JobId(0), 0.0, 3.0, 1.0, &[0.9, 0.1]),
            Job::from_fractions(JobId(0), 0.5, 1.0, 4.0, &[0.3, 0.8]),
            Job::from_fractions(JobId(0), 1.0, 2.0, 2.0, &[0.5, 0.5]),
            Job::from_fractions(JobId(0), 1.5, 1.0, 1.0, &[0.2, 0.9]),
        ];
        let instance = inst(jobs, 2);
        let best = best_list_schedule(&instance, 1).awct(&instance);
        for h in SortHeuristic::ALL {
            let s = Pq::new(h).schedule(&instance, 1);
            assert!(best <= s.awct(&instance) + 1e-9, "{h}");
        }
    }

    #[test]
    fn single_job_is_trivial() {
        let instance = inst(
            vec![Job::from_fractions(JobId(0), 2.0, 1.0, 1.0, &[0.5])],
            1,
        );
        let best = best_list_schedule(&instance, 3);
        assert_eq!(best.get(JobId(0)).unwrap().start, 2.0);
    }

    #[test]
    #[should_panic(expected = "exhaustive")]
    fn rejects_large_instances() {
        let jobs = (0..10)
            .map(|_| Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.1]))
            .collect();
        let instance = inst(jobs, 1);
        let _ = best_list_schedule(&instance, 1);
    }
}
